// Durable deploy journal tests (shard/journal.hpp): append/replay roundtrip,
// fsync policies, compaction, and — the point of a journal — recovery from
// every way a crash can mangle the file. The fuzz sections truncate the log
// at EVERY byte offset and flip bytes inside random records; recovery must
// never crash, never replay a corrupt record, and always report that history
// was cut (truncated_records/truncated_bytes) rather than silently serving a
// shorter past.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/shard/journal.hpp"
#include "util/fileio.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga;
using serve::shard::DeployJournal;
using serve::shard::FsyncPolicy;
using serve::shard::JournalConfig;
using serve::shard::JournalError;

namespace {

constexpr std::size_t kMagicBytes = 8;    // "CJNL0001"
constexpr std::size_t kRecordHeader = 8;  // u32 length + u32 crc32

std::string temp_journal(const std::string& dir) { return dir + "/deploys.jnl"; }

/// A deterministic record stream with varied sizes (including empty-ish and
/// multi-KB payloads) so record boundaries land on interesting offsets.
std::vector<std::string> sample_records(std::size_t count) {
  std::vector<std::string> out;
  util::Rng rng(7);
  for (std::size_t i = 0; i < count; ++i) {
    std::string body = util::format("{\"design\": %zu, \"blob\": \"", i);
    const std::size_t blob = (i * 97) % 600;
    for (std::size_t b = 0; b < blob; ++b) {
      body.push_back(static_cast<char>('a' + rng.next_u64() % 26));
    }
    body += "\"}";
    out.push_back(std::move(body));
  }
  return out;
}

std::string write_journal(const std::string& dir, const std::vector<std::string>& records,
                          JournalConfig config = {}) {
  const std::string path = temp_journal(dir);
  DeployJournal journal(path, config);
  EXPECT_TRUE(journal.open_and_replay().empty());
  for (const std::string& record : records) journal.append(record);
  return path;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  return util::read_file_bytes(path);
}

}  // namespace

TEST(Journal, RoundtripPreservesOrderAndBytes) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const auto records = sample_records(9);
  const std::string path = write_journal(dir, records);

  DeployJournal replay(path);
  EXPECT_EQ(replay.open_and_replay(), records);
  EXPECT_EQ(replay.records(), records.size());
  EXPECT_EQ(replay.truncated_records(), 0u);
  EXPECT_EQ(replay.truncated_bytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Journal, EmptyAndReopenedEmptyAreClean) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const std::string path = temp_journal(dir);
  {
    DeployJournal journal(path);
    EXPECT_TRUE(journal.open_and_replay().empty());
    EXPECT_EQ(journal.records(), 0u);
  }
  DeployJournal again(path);
  EXPECT_TRUE(again.open_and_replay().empty());
  EXPECT_EQ(again.truncated_records(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Journal, UnopenablePathThrows) {
  DeployJournal journal("/nonexistent/definitely/missing/deploys.jnl");
  EXPECT_THROW(journal.open_and_replay(), JournalError);
}

TEST(Journal, AppendAfterReplayExtendsTheLog) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  auto records = sample_records(4);
  const std::string path = write_journal(dir, records);

  {
    DeployJournal journal(path);
    EXPECT_EQ(journal.open_and_replay().size(), 4u);
    journal.append("{\"design\": \"late\"}");
  }
  records.push_back("{\"design\": \"late\"}");
  DeployJournal replay(path);
  EXPECT_EQ(replay.open_and_replay(), records);
  std::filesystem::remove_all(dir);
}

// Truncate the file at EVERY byte offset from 0 to its full size. Recovery
// must never crash; it must replay exactly the records whose bytes fully
// survived; it must report a cut whenever one happened (and only then); and
// the truncated file it leaves behind must itself replay cleanly.
TEST(Journal, TruncationFuzzAtEveryByteOffset) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const auto records = sample_records(6);
  const std::string path = write_journal(dir, records);
  const std::vector<std::uint8_t> bytes = slurp(path);

  // Reconstruct each record's end offset from the known framing.
  std::vector<std::size_t> boundaries = {kMagicBytes};
  for (const std::string& record : records) {
    boundaries.push_back(boundaries.back() + kRecordHeader + record.size());
  }
  ASSERT_EQ(boundaries.back(), bytes.size());

  const std::string cut_path = dir + "/cut.jnl";
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    util::write_file_bytes(cut_path,
                           std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));

    DeployJournal journal(cut_path);
    std::vector<std::string> replayed;
    ASSERT_NO_THROW(replayed = journal.open_and_replay()) << "offset " << len;

    // Complete records strictly before the cut survive; nothing else does.
    std::size_t intact = 0;
    while (intact + 1 < boundaries.size() && boundaries[intact + 1] <= len) ++intact;
    if (len < kMagicBytes) intact = 0;  // even the magic was torn
    ASSERT_EQ(replayed.size(), intact) << "offset " << len;
    for (std::size_t i = 0; i < intact; ++i) ASSERT_EQ(replayed[i], records[i]);

    // A cut landing exactly on a record boundary loses nothing (len == 0 is a
    // fresh file, not a cut); anything else must be reported.
    const bool clean = len == 0 || (len >= kMagicBytes && boundaries[intact] == len);
    if (clean) {
      ASSERT_EQ(journal.truncated_records(), 0u) << "offset " << len;
    } else {
      ASSERT_GE(journal.truncated_records(), 1u) << "offset " << len;
    }

    // The recovered file must be a valid journal: replay is idempotent.
    DeployJournal again(cut_path);
    std::vector<std::string> stable;
    ASSERT_NO_THROW(stable = again.open_and_replay()) << "offset " << len;
    ASSERT_EQ(stable.size(), intact) << "offset " << len;
    ASSERT_EQ(again.truncated_records(), 0u) << "offset " << len;
  }
  std::filesystem::remove_all(dir);
}

// Flip one byte inside random records (headers and payloads both). Everything
// before the corrupt record replays; the corrupt record and its suffix do
// not (length-prefixed framing has no resync point); the cut is reported.
TEST(Journal, BitFlipFuzzInRandomRecords) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const auto records = sample_records(8);
  const std::string path = write_journal(dir, records);
  const std::vector<std::uint8_t> bytes = slurp(path);

  std::vector<std::size_t> starts = {kMagicBytes};
  for (const std::string& record : records) {
    starts.push_back(starts.back() + kRecordHeader + record.size());
  }

  util::Rng rng(23);
  const std::string flip_path = dir + "/flip.jnl";
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t victim = rng.next_u64() % records.size();
    const std::size_t span = kRecordHeader + records[victim].size();
    const std::size_t offset = starts[victim] + rng.next_u64() % span;

    std::vector<std::uint8_t> mangled = bytes;
    mangled[offset] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    util::write_file_bytes(flip_path, mangled);

    DeployJournal journal(flip_path);
    std::vector<std::string> replayed;
    ASSERT_NO_THROW(replayed = journal.open_and_replay())
        << "record " << victim << " offset " << offset;
    ASSERT_EQ(replayed.size(), victim) << "record " << victim << " offset " << offset;
    for (std::size_t i = 0; i < victim; ++i) ASSERT_EQ(replayed[i], records[i]);
    ASSERT_GE(journal.truncated_records(), 1u);
    ASSERT_GT(journal.truncated_bytes(), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(Journal, CorruptMagicResetsTheFile) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const std::string path = write_journal(dir, sample_records(3));
  std::vector<std::uint8_t> bytes = slurp(path);
  bytes[0] ^= 0xff;
  util::write_file_bytes(path, bytes);

  DeployJournal journal(path);
  EXPECT_TRUE(journal.open_and_replay().empty());
  EXPECT_GE(journal.truncated_records(), 1u);
  journal.append("{\"fresh\": true}");

  DeployJournal again(path);
  EXPECT_EQ(again.open_and_replay(), std::vector<std::string>{"{\"fresh\": true}"});
  std::filesystem::remove_all(dir);
}

TEST(Journal, OversizedLengthFieldIsCorruption) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  JournalConfig config;
  config.max_record_bytes = 1024;
  const auto records = sample_records(2);
  const std::string path = write_journal(dir, records, config);

  // Append a record header claiming a payload far beyond max_record_bytes.
  std::vector<std::uint8_t> bytes = slurp(path);
  const std::uint32_t absurd = 1u << 30;
  for (int b = 0; b < 4; ++b) bytes.push_back(static_cast<std::uint8_t>(absurd >> (8 * b)));
  for (int b = 0; b < 4; ++b) bytes.push_back(0);
  util::write_file_bytes(path, bytes);

  DeployJournal journal(path, config);
  EXPECT_EQ(journal.open_and_replay(), records);
  EXPECT_GE(journal.truncated_records(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(Journal, CompactionSnapshotsTheLiveSet) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const std::string path = temp_journal(dir);
  JournalConfig config;
  config.compact_slack = 2;
  DeployJournal journal(path, config);
  EXPECT_TRUE(journal.open_and_replay().empty());
  const auto records = sample_records(10);
  for (const std::string& record : records) journal.append(record);

  // 10 journal records over 3 live designs: past 2 * live + slack (2*3+2).
  EXPECT_TRUE(journal.wants_compaction(3));
  EXPECT_FALSE(journal.wants_compaction(10));
  const std::vector<std::string> live = {records[1], records[5], records[9]};
  journal.compact(live);
  EXPECT_EQ(journal.records(), live.size());
  EXPECT_EQ(journal.compactions(), 1u);
  EXPECT_FALSE(journal.wants_compaction(3));

  // The snapshot replays exactly, and the log is still appendable after it.
  journal.append("{\"post\": \"compact\"}");
  DeployJournal replay(path);
  std::vector<std::string> expected = live;
  expected.push_back("{\"post\": \"compact\"}");
  EXPECT_EQ(replay.open_and_replay(), expected);
  EXPECT_EQ(replay.truncated_records(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Journal, FsyncPolicies) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const auto records = sample_records(8);

  JournalConfig every;
  every.fsync = FsyncPolicy::kEveryRecord;
  {
    DeployJournal journal(dir + "/every.jnl", every);
    journal.open_and_replay();
    for (const std::string& record : records) journal.append(record);
    EXPECT_GE(journal.fsyncs(), records.size());  // one per acked append
    EXPECT_EQ(journal.appends(), records.size());
  }
  JournalConfig interval;
  interval.fsync = FsyncPolicy::kInterval;
  interval.fsync_interval = 4;
  {
    DeployJournal journal(dir + "/interval.jnl", interval);
    journal.open_and_replay();
    std::uint64_t baseline = journal.fsyncs();
    for (const std::string& record : records) journal.append(record);
    EXPECT_EQ(journal.fsyncs() - baseline, records.size() / 4);
  }
  JournalConfig never;
  never.fsync = FsyncPolicy::kNever;
  {
    DeployJournal journal(dir + "/never.jnl", never);
    journal.open_and_replay();  // stamping the fresh magic may fsync once
    const std::uint64_t baseline = journal.fsyncs();
    for (const std::string& record : records) journal.append(record);
    EXPECT_EQ(journal.fsyncs(), baseline);  // appends never fsync
  }
  std::filesystem::remove_all(dir);
}

TEST(Journal, ToJsonExportsTheCounters) {
  const std::string dir = util::make_temp_dir("cnn2fpga-journal");
  const std::string path = write_journal(dir, sample_records(3));
  DeployJournal journal(path);
  journal.open_and_replay();
  const auto doc = journal.to_json();
  EXPECT_EQ(doc.at("path").as_string(), path);
  EXPECT_EQ(doc.at("records").as_int(), 3);
  EXPECT_EQ(doc.at("truncated_records").as_int(), 0);
  EXPECT_GE(doc.at("bytes").as_int(), 8);
  std::filesystem::remove_all(dir);
}

TEST(Crc32, KnownVectorsAndIncrementalEquivalence) {
  // IEEE 802.3 reference vector: crc32("123456789") == 0xcbf43926.
  EXPECT_EQ(util::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(util::crc32(""), 0u);

  util::Crc32 incremental;
  incremental.update("1234");
  incremental.update("56789");
  EXPECT_EQ(incremental.digest(), 0xcbf43926u);
}
