// Tests for the web-application face of the framework (HTTP JSON API).
#include <gtest/gtest.h>

#include "json/json.hpp"
#include "web/api.hpp"

using namespace cnn2fpga::web;
namespace json = cnn2fpga::json;

namespace {
const char* kDescriptorJson = R"({
  "name": "api_net",
  "board": "zedboard",
  "optimize": true,
  "seed": 7,
  "input": {"channels": 1, "height": 8, "width": 8},
  "layers": [
    {"type": "conv", "feature_maps_out": 2, "kernel": 3,
     "pool": {"type": "max", "kernel": 2, "step": 2}},
    {"type": "linear", "neurons": 4}
  ]
})";
}  // namespace

// ------------------------------------------------------- handlers (direct)

TEST(Api, Healthz) {
  const HttpResponse r = handle_healthz(HttpRequest{});
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(json::parse(r.body).at("status").as_string(), "ok");
}

TEST(Api, BoardsListsAllPlatforms) {
  const HttpResponse r = handle_boards(HttpRequest{});
  ASSERT_EQ(r.status, 200);
  const auto body = json::parse(r.body);
  const auto& boards = body.at("boards").as_array();
  ASSERT_EQ(boards.size(), 3u);
  EXPECT_EQ(boards[0].at("board").as_string(), "zybo");
  EXPECT_EQ(boards[1].at("board").as_string(), "zedboard");
  EXPECT_EQ(boards[1].at("dsp").as_int(), 220);
}

TEST(Api, GenerateReturnsArtifactsAndReport) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/api/v1/generate";
  request.body = kDescriptorJson;
  const HttpResponse r = handle_generate(request);
  ASSERT_EQ(r.status, 200) << r.body;

  const auto body = json::parse(r.body);
  EXPECT_EQ(body.at("name").as_string(), "api_net");
  EXPECT_EQ(body.at("cpp_file").as_string(), "api_net.cpp");
  EXPECT_NE(body.at("cpp_source").as_string().find("int cnn_core"), std::string::npos);
  EXPECT_EQ(body.at("tcl_files").as_object().size(), 3u);
  EXPECT_TRUE(body.at("hls_report").at("fits").as_bool());
  EXPECT_GT(body.at("hls_report").at("latency_cycles").as_double(), 0.0);
  EXPECT_EQ(body.at("hls_report").at("directives").as_string(), "DATAFLOW+PIPELINE");
  EXPECT_TRUE(body.at("warnings").as_array().empty());
}

TEST(Api, GenerateIsDeterministicPerSeed) {
  HttpRequest request;
  request.body = kDescriptorJson;
  const auto a = json::parse(handle_generate(request).body);
  const auto b = json::parse(handle_generate(request).body);
  EXPECT_EQ(a.at("cpp_source").as_string(), b.at("cpp_source").as_string());
}

TEST(Api, GenerateRejectsMalformedJson) {
  HttpRequest request;
  request.body = "{ nope";
  const HttpResponse r = handle_generate(request);
  EXPECT_EQ(r.status, 400);
  const auto error = json::parse(r.body).at("error");
  EXPECT_EQ(error.at("code").as_string(), "bad_json");
  EXPECT_NE(error.at("message").as_string().size(), 0u);
}

TEST(Api, GenerateRejectsUnsupportedSchemaVersion) {
  HttpRequest request;
  request.body = R"({
    "schema_version": 99,
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]
  })";
  const HttpResponse r = handle_generate(request);
  EXPECT_EQ(r.status, 400);
  const auto error = json::parse(r.body).at("error");
  EXPECT_EQ(error.at("code").as_string(), "bad_descriptor");
  EXPECT_NE(error.at("message").as_string().find("schema_version"), std::string::npos);
}

TEST(Api, GenerateRejectsInvalidDescriptor) {
  HttpRequest request;
  request.body = R"({"input": {"channels": 1, "height": 8, "width": 8}, "layers": []})";
  const HttpResponse r = handle_generate(request);
  EXPECT_EQ(r.status, 400);
}

TEST(Api, GenerateWarnsWhenDesignDoesNotFit) {
  // A CIFAR-sized network on the little Zybo: must still answer 200 but with
  // a non-empty warning list (the framework reports instead of crashing).
  HttpRequest request;
  request.body = R"({
    "name": "too_big", "board": "zybo", "optimize": true,
    "input": {"channels": 3, "height": 32, "width": 32},
    "layers": [
      {"type": "conv", "feature_maps_out": 12, "kernel": 5,
       "pool": {"type": "max", "kernel": 2, "step": 2}},
      {"type": "conv", "feature_maps_out": 36, "kernel": 5,
       "pool": {"type": "max", "kernel": 2, "step": 2}},
      {"type": "linear", "neurons": 36},
      {"type": "linear", "neurons": 10}
    ]})";
  const HttpResponse r = handle_generate(request);
  ASSERT_EQ(r.status, 200) << r.body;
  const auto body = json::parse(r.body);
  EXPECT_FALSE(body.at("hls_report").at("fits").as_bool());
  EXPECT_FALSE(body.at("warnings").as_array().empty());
}

// -------------------------------------------------------- full HTTP server

TEST(HttpServer, EndToEndRoundTrip) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  const auto health = http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);

  const auto generate =
      http_request("127.0.0.1", port, "POST", "/api/v1/generate", kDescriptorJson);
  ASSERT_TRUE(generate.has_value());
  EXPECT_EQ(generate->status, 200);
  EXPECT_EQ(json::parse(generate->body).at("name").as_string(), "api_net");

  server.stop();
}

TEST(HttpServer, NotFoundAndMethodNotAllowed) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);

  const auto missing = http_request("127.0.0.1", port, "GET", "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(json::parse(missing->body).at("error").at("code").as_string(), "not_found");

  const auto wrong_method = http_request("127.0.0.1", port, "GET", "/api/v1/generate");
  ASSERT_TRUE(wrong_method.has_value());
  EXPECT_EQ(wrong_method->status, 405);
  EXPECT_EQ(json::parse(wrong_method->body).at("error").at("code").as_string(),
            "method_not_allowed");

  server.stop();
}

TEST(HttpServer, VersionedRoutesAndRetiredAliases) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);

  // The v1 route answers without migration headers.
  const auto v1 = http_request("127.0.0.1", port, "POST", "/api/v1/generate", kDescriptorJson);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->status, 200);
  EXPECT_EQ(v1->headers.count("deprecation"), 0u);

  // The pre-versioning alias is retired: 410 in the uniform envelope, with a
  // successor-version Link naming the replacement. The handler never runs.
  const auto legacy = http_request("127.0.0.1", port, "POST", "/api/generate", kDescriptorJson);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->status, 410);
  ASSERT_EQ(legacy->headers.count("link"), 1u);
  EXPECT_NE(legacy->headers.at("link").find("/api/v1/generate"), std::string::npos);
  EXPECT_NE(legacy->headers.at("link").find("successor-version"), std::string::npos);
  const auto envelope = json::parse(legacy->body);
  EXPECT_EQ(envelope.at("error").at("code").as_string(), "gone");
  EXPECT_NE(envelope.at("error").at("message").as_string().find("/api/v1/generate"),
            std::string::npos);

  // The tombstone answers 410 regardless of payload validity — it is a pure
  // router response, not the handler behind it.
  const auto bad = http_request("127.0.0.1", port, "POST", "/api/generate", "{ nope");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 410);
  EXPECT_EQ(json::parse(bad->body).at("error").at("code").as_string(), "gone");

  // Health is mounted both at the top level and under the version prefix.
  const auto health = http_request("127.0.0.1", port, "GET", "/api/v1/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  HttpServer server;
  install_api(server);
  const int port1 = server.start(0);
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();  // no-op
  EXPECT_FALSE(server.running());
  const int port2 = server.start(0);
  EXPECT_TRUE(server.running());
  (void)port1;
  const auto health = http_request("127.0.0.1", port2, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(Api, IndexServesTheGui) {
  const HttpResponse r = handle_index(HttpRequest{});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("text/html"), std::string::npos);
  // The Fig. 4 options must be present: feature maps out, kernel, pooling,
  // board selection, and the generate action posting to the API.
  EXPECT_NE(r.body.find("feature maps out"), std::string::npos);
  EXPECT_NE(r.body.find("max-pool"), std::string::npos);
  EXPECT_NE(r.body.find("zedboard"), std::string::npos);
  EXPECT_NE(r.body.find("/api/v1/generate"), std::string::npos);
  EXPECT_NE(r.body.find("weights_mode"), std::string::npos);
}

TEST(HttpServer, ServesIndexOverHttp) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);
  const auto r = http_request("127.0.0.1", port, "GET", "/");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->body.find("<html"), std::string::npos);
  server.stop();
}

TEST(HttpServer, SurvivesGarbageRequests) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);

  // A raw socket sending garbage must not kill the server.
  {
    const auto r = http_request("127.0.0.1", port, "GARBAGE !!", "///");
    (void)r;  // whatever the response, the server must keep serving
  }
  const auto health = http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpServer, HandlerExceptionsBecome500) {
  HttpServer server;
  server.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  const int port = server.start(0);
  const auto r = http_request("127.0.0.1", port, "GET", "/boom");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 500);
  EXPECT_NE(r->body.find("handler exploded"), std::string::npos);
  // And the server is still alive.
  server.route("GET", "/ok", [](const HttpRequest&) -> HttpResponse {
    return {200, "text/plain", "fine", {}};
  });
  server.stop();
}

TEST(HttpServer, EmptyBodyPostIsBadRequestNotCrash) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);
  const auto r = http_request("127.0.0.1", port, "POST", "/api/v1/generate", "");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 400);
  server.stop();
}

TEST(HttpServer, ServesSequentialClients) {
  HttpServer server;
  install_api(server);
  const int port = server.start(0);
  for (int i = 0; i < 5; ++i) {
    const auto r = http_request("127.0.0.1", port, "GET", "/api/v1/boards");
    ASSERT_TRUE(r.has_value()) << "request " << i;
    EXPECT_EQ(r->status, 200);
  }
  server.stop();
}
