// Tests for the sub-sampling layers (paper Eq. 4-5).
#include <gtest/gtest.h>

#include <tuple>

#include "nn/pool.hpp"
#include "util/rng.hpp"

using cnn2fpga::nn::Pool2D;
using cnn2fpga::nn::PoolKind;
using cnn2fpga::nn::Shape;
using cnn2fpga::nn::Tensor;

TEST(Pool, OutputShapeFollowsEq4And5) {
  // Paper Test 1: 12x12 maps, 2x2 max-pool, step 2 -> 6x6.
  Pool2D pool = Pool2D::max_pool(2);
  EXPECT_EQ(pool.output_shape(Shape{6, 12, 12}), (Shape{6, 6, 6}));
}

TEST(Pool, OddSizesFloorPerEq4) {
  // floor((7-2)/2)+1 = 3
  Pool2D pool = Pool2D::max_pool(2);
  EXPECT_EQ(pool.output_shape(Shape{1, 7, 7}), (Shape{1, 3, 3}));
}

TEST(Pool, MaxPoolingPicksWindowMaximum) {
  Pool2D pool = Pool2D::max_pool(2);
  Tensor x(Shape{1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 5.0f);   // max of {0,1,4,5}
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 15.0f);
}

TEST(Pool, MaxPoolingHandlesNegatives) {
  Pool2D pool = Pool2D::max_pool(2);
  Tensor x(Shape{1, 2, 2});
  x[0] = -4.0f;
  x[1] = -1.0f;
  x[2] = -3.0f;
  x[3] = -2.0f;
  EXPECT_FLOAT_EQ(pool.forward(x, false)[0], -1.0f);
}

TEST(Pool, MeanPoolingAverages) {
  Pool2D pool = Pool2D::mean_pool(2);
  Tensor x(Shape{1, 2, 2});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  x[3] = 6.0f;
  EXPECT_FLOAT_EQ(pool.forward(x, false)[0], 3.0f);
}

TEST(Pool, ChannelsAreIndependent) {
  Pool2D pool = Pool2D::max_pool(2);
  Tensor x(Shape{2, 2, 2});
  for (std::size_t i = 0; i < 4; ++i) x[i] = 1.0f;       // channel 0
  for (std::size_t i = 4; i < 8; ++i) x[i] = 100.0f;     // channel 1
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 100.0f);
}

TEST(Pool, OverlappingWindowsWithStrideOne) {
  Pool2D pool(PoolKind::kMax, 2, 2, 1);
  Tensor x(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 8.0f);
}

TEST(Pool, MaxBackwardRoutesToWinner) {
  Pool2D pool = Pool2D::max_pool(2);
  Tensor x(Shape{1, 2, 2});
  x[0] = 1.0f;
  x[1] = 9.0f;  // winner
  x[2] = 2.0f;
  x[3] = 3.0f;
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1, 1});
  g[0] = 5.0f;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 5.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
  EXPECT_FLOAT_EQ(gx[3], 0.0f);
}

TEST(Pool, MeanBackwardSpreadsEvenly) {
  Pool2D pool = Pool2D::mean_pool(2);
  Tensor x(Shape{1, 2, 2});
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1, 1});
  g[0] = 8.0f;
  const Tensor gx = pool.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
}

TEST(Pool, Validation) {
  EXPECT_THROW(Pool2D(PoolKind::kMax, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(Pool2D(PoolKind::kMax, 2, 2, 0), std::invalid_argument);
  Pool2D pool = Pool2D::max_pool(4);
  EXPECT_THROW(pool.output_shape(Shape{1, 3, 3}), std::invalid_argument);
  EXPECT_THROW(pool.output_shape(Shape{3, 3}), std::invalid_argument);
  EXPECT_THROW(pool.backward(Tensor(Shape{1, 1, 1})), std::logic_error);
}

// ------------------------------------------------------------------------
// Property sweep: Eq. 4/5 over (size, kernel, step) grid, both pool kinds.
// ------------------------------------------------------------------------

class PoolShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, PoolKind>> {};

TEST_P(PoolShapeSweep, DimensionsFollowEq4And5) {
  const auto [size, kernel, step, kind] = GetParam();
  if (kernel > size) GTEST_SKIP();
  Pool2D pool(kind, kernel, kernel, step);
  const Shape out = pool.output_shape(Shape{3, size, size});
  EXPECT_EQ(out.channels(), 3u);
  EXPECT_EQ(out.height(), (size - kernel) / step + 1);
  EXPECT_EQ(out.width(), (size - kernel) / step + 1);

  // Forward output must have exactly that shape, and for max-pooling every
  // output must be present in the input (a selection, not an arithmetic mix).
  cnn2fpga::util::Rng rng(99);
  Tensor x(Shape{3, size, size});
  x.fill_uniform(rng, -1.0f, 1.0f);
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), out);
  if (kind == PoolKind::kMax) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      bool found = false;
      for (std::size_t j = 0; j < x.size() && !found; ++j) found = (x[j] == y[i]);
      EXPECT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoolShapeSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 12, 14),
                       ::testing::Values<std::size_t>(2, 3),
                       ::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values(PoolKind::kMax, PoolKind::kMean)));
