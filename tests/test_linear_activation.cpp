// Tests for the linear layer (Eq. 6), activations, and LogSoftMax (Eq. 7).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/logsoftmax.hpp"
#include "util/rng.hpp"

using namespace cnn2fpga::nn;

// ---------------------------------------------------------------- linear

TEST(Linear, HandComputedValue) {
  Linear lin(3, 2);
  // w = [[1,2,3],[4,5,6]], b = [0.5, -1]
  for (int i = 0; i < 6; ++i) lin.weights()[i] = static_cast<float>(i + 1);
  lin.bias()[0] = 0.5f;
  lin.bias()[1] = -1.0f;
  Tensor x(Shape{3});
  x[0] = 1.0f;
  x[1] = 0.0f;
  x[2] = -1.0f;
  const Tensor y = lin.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f - 3.0f + 0.5f);   // -1.5
  EXPECT_FLOAT_EQ(y[1], 4.0f - 6.0f - 1.0f);   // -3
}

TEST(Linear, AcceptsFlattenedFeatureMaps) {
  // Paper Test 1: the 10-neuron linear layer reads the 6x6x6 pooled maps.
  Linear lin(216, 10);
  Tensor x(Shape{6, 6, 6});
  EXPECT_EQ(lin.output_shape(x.shape()), (Shape{10}));
  EXPECT_NO_THROW(lin.forward(x, false));
  EXPECT_EQ(lin.mac_count(x.shape()), 2160u);
}

TEST(Linear, SizeMismatchThrows) {
  Linear lin(4, 2);
  EXPECT_THROW(lin.forward(Tensor(Shape{5}), false), std::invalid_argument);
  EXPECT_THROW(Linear(0, 1), std::invalid_argument);
}

TEST(Linear, GradientCheck) {
  cnn2fpga::util::Rng rng(7);
  Linear lin(6, 4);
  lin.init_weights(rng);
  Tensor x(Shape{6});
  x.fill_uniform(rng, -1.0f, 1.0f);

  lin.zero_grad();
  const Tensor y = lin.forward(x, true);
  Tensor ones(y.shape());
  ones.fill(1.0f);
  const Tensor gx = lin.backward(ones);

  const auto objective = [&](const Tensor& input) {
    const Tensor out = lin.forward(input, false);
    double s = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) s += out[i];
    return s;
  };
  const double eps = 1e-2;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    EXPECT_NEAR(gx[i], (objective(xp) - objective(xm)) / (2 * eps), 1e-2);
  }
  // d(sum y)/d w[j,i] = x[i]; d/d b[j] = 1.
  const auto params = lin.params();
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR((*params[0].grad)[j * 6 + i], x[i], 1e-5);
    }
    EXPECT_NEAR((*params[1].grad)[j], 1.0f, 1e-6);
  }
}

// ------------------------------------------------------------- activations

TEST(Activation, TanhValues) {
  Activation act(ActKind::kTanh);
  Tensor x(Shape{3});
  x[0] = 0.0f;
  x[1] = 1.0f;
  x[2] = -20.0f;
  const Tensor y = act.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], std::tanh(1.0f), 1e-6f);
  EXPECT_NEAR(y[2], -1.0f, 1e-6f);
}

TEST(Activation, SigmoidValues) {
  Activation act(ActKind::kSigmoid);
  Tensor x(Shape{2});
  x[0] = 0.0f;
  x[1] = 100.0f;
  const Tensor y = act.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
}

TEST(Activation, ReluClampsNegatives) {
  Activation act(ActKind::kReLU);
  Tensor x(Shape{3});
  x[0] = -2.0f;
  x[1] = 0.0f;
  x[2] = 3.0f;
  const Tensor y = act.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(Activation, BackwardUsesDerivative) {
  Activation act(ActKind::kTanh);
  Tensor x(Shape{1});
  x[0] = 0.5f;
  const Tensor y = act.forward(x, true);
  Tensor g(Shape{1});
  g[0] = 2.0f;
  const Tensor gx = act.backward(g);
  EXPECT_NEAR(gx[0], 2.0f * (1.0f - y[0] * y[0]), 1e-6f);
}

TEST(Activation, ShapePreserved) {
  Activation act(ActKind::kReLU);
  EXPECT_EQ(act.output_shape(Shape{6, 6, 6}), (Shape{6, 6, 6}));
}

// ------------------------------------------------------------- logsoftmax

TEST(LogSoftMax, ProbabilitiesSumToOne) {
  // Eq. 7: exp of the outputs must be a probability distribution.
  LogSoftMax lsm;
  Tensor x(Shape{10});
  cnn2fpga::util::Rng rng(5);
  x.fill_uniform(rng, -4.0f, 4.0f);
  const Tensor y = lsm.forward(x, false);
  double sum = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sum += std::exp(y[i]);
    EXPECT_LE(y[i], 0.0f);  // log-probabilities are non-positive
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(LogSoftMax, ShiftInvariant) {
  LogSoftMax lsm;
  Tensor a(Shape{5}), b(Shape{5});
  for (std::size_t i = 0; i < 5; ++i) {
    a[i] = static_cast<float>(i) * 0.3f;
    b[i] = a[i] + 100.0f;
  }
  const Tensor ya = lsm.forward(a, false);
  const Tensor yb = lsm.forward(b, false);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(ya[i], yb[i], 1e-4f);
}

TEST(LogSoftMax, StableForLargeInputs) {
  LogSoftMax lsm;
  Tensor x(Shape{3});
  x[0] = 1000.0f;
  x[1] = 999.0f;
  x[2] = -1000.0f;
  const Tensor y = lsm.forward(x, false);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(y[i]));
  EXPECT_GT(y[0], y[1]);
  EXPECT_GT(y[1], y[2]);
}

TEST(LogSoftMax, PreservesArgmax) {
  LogSoftMax lsm;
  cnn2fpga::util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    Tensor x(Shape{10});
    x.fill_uniform(rng, -5.0f, 5.0f);
    EXPECT_EQ(lsm.forward(x, false).argmax(), x.argmax());
  }
}

TEST(LogSoftMax, NllLoss) {
  Tensor logp(Shape{3});
  logp[0] = -0.5f;
  logp[1] = -2.0f;
  logp[2] = -3.0f;
  EXPECT_FLOAT_EQ(nll_loss(logp, 1), 2.0f);
  EXPECT_THROW(nll_loss(logp, 3), std::out_of_range);
  const Tensor g = nll_loss_grad(logp, 1);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], -1.0f);
}

TEST(LogSoftMax, BackwardGradientCheck) {
  LogSoftMax lsm;
  cnn2fpga::util::Rng rng(8);
  Tensor x(Shape{6});
  x.fill_uniform(rng, -2.0f, 2.0f);
  const std::size_t target = 2;

  const Tensor logp = lsm.forward(x, true);
  const Tensor gx = lsm.backward(nll_loss_grad(logp, target));

  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += static_cast<float>(eps);
    xm[i] -= static_cast<float>(eps);
    LogSoftMax fresh;
    const double plus = nll_loss(fresh.forward(xp, false), target);
    const double minus = nll_loss(fresh.forward(xm, false), target);
    EXPECT_NEAR(gx[i], (plus - minus) / (2 * eps), 1e-2) << i;
  }
}

TEST(LogSoftMax, EmptyInputThrows) {
  LogSoftMax lsm;
  EXPECT_THROW(lsm.forward(Tensor(), false), std::invalid_argument);
}
