// Unit tests for src/util: strings, rng, cli, fileio, table, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "util/cli.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace util = cnn2fpga::util;

// ---------------------------------------------------------------- strings

TEST(Strings, FormatBasic) {
  EXPECT_EQ(util::format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(util::format("%.2f", 1.5), "1.50");
  EXPECT_EQ(util::format("empty"), "empty");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = util::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = util::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  x y \t\n"), "x y");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim("z"), "z");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(util::starts_with("cnn_vivado.tcl", "cnn_"));
  EXPECT_FALSE(util::starts_with("cnn", "cnn_"));
  EXPECT_TRUE(util::ends_with("cnn_vivado.tcl", ".tcl"));
  EXPECT_FALSE(util::ends_with(".tcl", "cnn.tcl"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(util::replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(util::replace_all("aaa", "aa", "b"), "ba");  // non-overlapping, left to right
  EXPECT_EQ(util::replace_all("x", "", "y"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ","), "");
  EXPECT_EQ(util::join({"only"}, ","), "only");
}

TEST(Strings, Indent) {
  EXPECT_EQ(util::indent("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(util::indent("", 2), "");
  EXPECT_EQ(util::indent("\n\n", 2), "\n\n");  // blank lines stay blank
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(util::human_bytes(512), "512 B");
  EXPECT_EQ(util::human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(util::human_bytes(3u << 20), "3.00 MiB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(util::human_seconds(0.53), "530.00 ms");
  EXPECT_EQ(util::human_seconds(2.8), "2.80 s");
  EXPECT_EQ(util::human_seconds(223.0), "223 s");
  EXPECT_EQ(util::human_seconds(2.5e-6), "2.50 us");
}

TEST(Strings, IsCIdentifier) {
  EXPECT_TRUE(util::is_c_identifier("cnn_core"));
  EXPECT_TRUE(util::is_c_identifier("_x1"));
  EXPECT_FALSE(util::is_c_identifier("1abc"));
  EXPECT_FALSE(util::is_c_identifier("a-b"));
  EXPECT_FALSE(util::is_c_identifier(""));
}

TEST(Strings, SanitizeIdentifier) {
  EXPECT_EQ(util::sanitize_identifier("usps test-1"), "usps_test_1");
  EXPECT_EQ(util::sanitize_identifier("1net"), "_1net");
  EXPECT_EQ(util::sanitize_identifier(""), "_");
  EXPECT_TRUE(util::is_c_identifier(util::sanitize_identifier("a b$c/9")));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  util::Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  util::Rng a2(7), c2(8);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRange) {
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  util::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every bucket hit over 2000 draws
}

TEST(Rng, NormalMoments) {
  util::Rng rng(4);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParams) {
  util::Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  // Note: a bare `--flag` directly before a positional would greedily consume
  // it as the flag's value; use `--flag=true` or place flags last to be
  // unambiguous (documented CliArgs behaviour).
  const char* argv[] = {"prog", "--count", "5", "--name=net", "pos1", "pos2", "--verbose"};
  util::CliArgs args(7, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get_int("count", 0), 5);
  EXPECT_EQ(args.get_string("name", ""), "net");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  util::CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Cli, ExplicitBooleanValues) {
  const char* argv[] = {"prog", "--a=false", "--b=true", "--c=0", "--d=yes"};
  util::CliArgs args(5, argv);
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_FALSE(args.get_bool("c", true));
  EXPECT_TRUE(args.get_bool("d", false));
}

// ---------------------------------------------------------------- fileio

TEST(FileIo, RoundTrip) {
  const std::string dir = util::make_temp_dir("cnn2fpga-test");
  const std::string path = dir + "/file.txt";
  util::write_file(path, "hello\nworld");
  EXPECT_TRUE(util::file_exists(path));
  EXPECT_EQ(util::read_file(path), "hello\nworld");
  std::filesystem::remove_all(dir);
}

TEST(FileIo, BinaryRoundTrip) {
  const std::string dir = util::make_temp_dir("cnn2fpga-test");
  const std::string path = dir + "/file.bin";
  std::vector<std::uint8_t> bytes = {0, 255, 10, 13, 0, 42};
  util::write_file_bytes(path, bytes);
  EXPECT_EQ(util::read_file_bytes(path), bytes);
  std::filesystem::remove_all(dir);
}

TEST(FileIo, ReadMissingThrows) {
  EXPECT_THROW(util::read_file("/nonexistent/definitely/missing"), std::runtime_error);
}

TEST(FileIo, MakeDirsNested) {
  const std::string dir = util::make_temp_dir("cnn2fpga-test");
  util::make_dirs(dir + "/a/b/c");
  EXPECT_TRUE(std::filesystem::is_directory(dir + "/a/b/c"));
  util::make_dirs(dir + "/a/b/c");  // idempotent
  std::filesystem::remove_all(dir);
}

TEST(FileIo, TempDirsAreUnique) {
  const std::string a = util::make_temp_dir("cnn2fpga-test");
  const std::string b = util::make_temp_dir("cnn2fpga-test");
  EXPECT_NE(a, b);
  std::filesystem::remove_all(a);
  std::filesystem::remove_all(b);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedCells) {
  util::Table t({"Test", "Speedup"});
  t.add_row({"Test 1", "1.18X"});
  t.add_row({"Test 4 (long name)", "11.5X"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Test 1"), std::string::npos);
  EXPECT_NE(out.find("11.5X"), std::string::npos);
  // Every rendered line has equal width.
  const auto lines = util::split(out, '\n');
  std::size_t width = lines[0].size();
  for (const auto& line : lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.size(), width);
    }
  }
}

TEST(Table, PadsShortRows) {
  util::Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.render().find("| 1 |"), std::string::npos);
}

TEST(Table, TsvOutput) {
  util::Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_tsv(), "a\tb\n1\t2\n");
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelParsing) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("WARN"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("bogus"), util::LogLevel::kInfo);
}

TEST(Logging, ThresholdGates) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kError);
  EXPECT_EQ(util::log_level(), util::LogLevel::kError);
  // A below-threshold message must not crash and must be dropped silently.
  LOG_DEBUG("test") << "dropped " << 123;
  util::set_log_level(saved);
}
