// Tests for the Cortex-A9 baseline model and the power/energy models,
// checked against the regimes implied by the paper's Table I.
#include <gtest/gtest.h>

#include "cpu/a9_model.hpp"
#include "hls/estimator.hpp"
#include "power/energy_logger.hpp"
#include "power/power_model.hpp"

using namespace cnn2fpga;

TEST(A9Model, Test1TimeMatchesPaperRegime) {
  // Paper: 3.3 s for 1000 images -> 3.3 ms/image. Accept 2.5..4.5 ms.
  const nn::Network net = nn::make_test1_network();
  const double seconds = cpu::forward_seconds(net);
  EXPECT_GT(seconds, 2.5e-3);
  EXPECT_LT(seconds, 4.5e-3);
}

TEST(A9Model, Test3TimeMatchesPaperRegime) {
  // Paper: 4.3 s for 1000 images.
  const nn::Network net = nn::make_test3_network();
  const double seconds = cpu::batch_seconds(net, 1000);
  EXPECT_GT(seconds, 3.4);
  EXPECT_LT(seconds, 5.5);
}

TEST(A9Model, Test4TimeMatchesPaperRegime) {
  // Paper: 2565 s for 10000 images -> 256.5 ms/image. Accept 200..320 ms.
  const nn::Network net = nn::make_test4_network();
  const double seconds = cpu::forward_seconds(net);
  EXPECT_GT(seconds, 0.200);
  EXPECT_LT(seconds, 0.320);
}

TEST(A9Model, ScalesLinearlyWithBatch) {
  const nn::Network net = nn::make_test1_network();
  EXPECT_DOUBLE_EQ(cpu::batch_seconds(net, 1000), 1000.0 * cpu::forward_seconds(net));
}

TEST(A9Model, CyclesDominatedByMacs) {
  const nn::Network net = nn::make_test1_network();
  const cpu::A9Model model;
  const std::uint64_t cycles = cpu::forward_cycles(net, model);
  const double mac_cycles =
      static_cast<double>(21600 + 2160) * model.cycles_per_mac;  // conv + linear
  EXPECT_GT(static_cast<double>(cycles), mac_cycles);
  EXPECT_LT(static_cast<double>(cycles), mac_cycles * 1.2);
}

TEST(A9Model, CustomModelParametersRespected) {
  const nn::Network net = nn::make_test1_network();
  cpu::A9Model fast;
  fast.cycles_per_mac = 9.0;  // e.g. a NEON-optimized baseline
  EXPECT_LT(cpu::forward_seconds(net, fast), cpu::forward_seconds(net) / 5.0);
}

// ---------------------------------------------------------------- power

TEST(Power, SoftwarePowerIsPaperCpuFigure) {
  EXPECT_DOUBLE_EQ(power::software_power_w(), 2.2);
}

TEST(Power, HardwarePowerInPaperRange) {
  // Paper: 4.19..4.37 W across the four tests. Accept 3.8..4.8 W.
  for (const auto* net_name : {"t1", "t3", "t4"}) {
    nn::Network net = std::string(net_name) == "t1"   ? nn::make_test1_network()
                      : std::string(net_name) == "t3" ? nn::make_test3_network()
                                                      : nn::make_test4_network();
    const hls::HlsReport report =
        hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
    const double watts = power::hardware_power_w(report.usage);
    EXPECT_GT(watts, 3.8) << net_name;
    EXPECT_LT(watts, 4.8) << net_name;
  }
}

TEST(Power, MoreResourcesMorePower) {
  const hls::HlsReport t1 = hls::estimate(cnn2fpga::nn::make_test1_network(),
                                          hls::DirectiveSet::optimized(), hls::zedboard());
  const hls::HlsReport t4 = hls::estimate(cnn2fpga::nn::make_test4_network(),
                                          hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_GT(power::hardware_power_w(t4.usage), power::hardware_power_w(t1.usage));
}

TEST(Power, PlShareIsSmallAgainstBoard) {
  const hls::HlsReport t1 = hls::estimate(cnn2fpga::nn::make_test1_network(),
                                          hls::DirectiveSet::naive(), hls::zedboard());
  const double pl = power::pl_power_w(t1.usage);
  EXPECT_GT(pl, 0.1);
  EXPECT_LT(pl, 1.0);
  EXPECT_LT(pl, power::hardware_power_w(t1.usage));
}

// ---------------------------------------------------------------- energy

TEST(Energy, IntegratesPowerOverTime) {
  power::EnergyLogger logger;
  logger.add_segment(2.2, 3.3);   // software run of Test 1
  EXPECT_DOUBLE_EQ(logger.joules(), 7.26);  // paper Table I software energy
  logger.add_segment(0.0, 1.0);
  EXPECT_DOUBLE_EQ(logger.joules(), 7.26);
  EXPECT_DOUBLE_EQ(logger.total_seconds(), 4.3);
  EXPECT_NEAR(logger.mean_power_w(), 7.26 / 4.3, 1e-12);
  EXPECT_EQ(logger.segment_count(), 2u);
}

TEST(Energy, ResetClears) {
  power::EnergyLogger logger;
  logger.add_segment(1.0, 1.0);
  logger.reset();
  EXPECT_DOUBLE_EQ(logger.joules(), 0.0);
  EXPECT_DOUBLE_EQ(logger.mean_power_w(), 0.0);
}

TEST(Energy, RejectsNegativeInputs) {
  power::EnergyLogger logger;
  EXPECT_THROW(logger.add_segment(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(logger.add_segment(1.0, -1.0), std::invalid_argument);
}

TEST(Energy, NaiveHardwareCostsMoreEnergyThanSoftware) {
  // The paper's key Test 1 observation: 1.18x speedup does not pay for the
  // extra board power (11.73 J vs 7.26 J).
  nn::Network net = nn::make_test1_network();
  const double sw_time = cpu::batch_seconds(net, 1000);
  const hls::HlsReport naive = hls::estimate(net, hls::DirectiveSet::naive(), hls::zedboard());
  const double hw_time = 1000.0 * naive.latency_seconds();
  const double sw_energy = power::software_power_w() * sw_time;
  const double hw_energy = power::hardware_power_w(naive.usage) * hw_time;
  EXPECT_GT(hw_energy, sw_energy);
}

TEST(Energy, OptimizedHardwareIsMoreEnergyEfficient) {
  // Paper Test 2: 2.23 J (hw) vs 7.26 J (sw).
  nn::Network net = nn::make_test1_network();
  const double sw_time = cpu::batch_seconds(net, 1000);
  const hls::HlsReport opt =
      hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
  const double hw_time = 1000.0 * opt.latency_seconds();
  const double sw_energy = power::software_power_w() * sw_time;
  const double hw_energy = power::hardware_power_w(opt.usage) * hw_time;
  EXPECT_LT(hw_energy, sw_energy);
}
