// Unit tests for the tensor substrate.
#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

using cnn2fpga::tensor::Shape;
using cnn2fpga::tensor::Tensor;

TEST(Shape, BasicProperties) {
  const Shape s{6, 12, 12};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.elements(), 864u);
  EXPECT_EQ(s.channels(), 6u);
  EXPECT_EQ(s.height(), 12u);
  EXPECT_EQ(s.width(), 12u);
  EXPECT_EQ(s.to_string(), "(6, 12, 12)");
}

TEST(Shape, DefaultIsEmpty) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.elements(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));  // rank matters
}

TEST(Shape, FromSpan) {
  const std::vector<std::size_t> dims = {4, 5};
  const Shape s{std::span<const std::size_t>(dims)};
  EXPECT_EQ(s.rank(), 2u);
  EXPECT_EQ(s.elements(), 20u);
}

TEST(Shape, RankLimit) {
  EXPECT_THROW((Shape{1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(Tensor, ConstructAndFill) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, MultiDimIndexingIsRowMajor) {
  Tensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 42.0f;
  EXPECT_FLOAT_EQ(t[1 * 12 + 2 * 4 + 3], 42.0f);
  t.at(0, 0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t[0], 7.0f);
}

TEST(Tensor, FourDimIndexing) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, AtIsBoundsChecked) {
  Tensor t(Shape{2, 2});
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(1, 2), std::out_of_range);
  EXPECT_NO_THROW(t.at(1, 1));
}

TEST(Tensor, FillUniformRange) {
  cnn2fpga::util::Rng rng(1);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -0.25f, 0.25f);
  EXPECT_GE(t.min(), -0.25f);
  EXPECT_LT(t.max(), 0.25f);
  EXPECT_NE(t.min(), t.max());
}

TEST(Tensor, FillNormalStats) {
  cnn2fpga::util::Rng rng(2);
  Tensor t(Shape{4, 50, 50});
  t.fill_normal(rng, 3.0f, 0.5f);
  EXPECT_NEAR(t.sum() / static_cast<float>(t.size()), 3.0f, 0.05f);
}

TEST(Tensor, MaxAbsDiffAndAllClose) {
  Tensor a(Shape{4}), b(Shape{4});
  a[2] = 1.0f;
  b[2] = 1.25f;
  EXPECT_FLOAT_EQ(Tensor::max_abs_diff(a, b), 0.25f);
  EXPECT_TRUE(Tensor::all_close(a, b, 0.25f));
  EXPECT_FALSE(Tensor::all_close(a, b, 0.1f));
}

TEST(Tensor, MaxAbsDiffShapeMismatchThrows) {
  Tensor a(Shape{4}), b(Shape{5});
  EXPECT_THROW(Tensor::max_abs_diff(a, b), std::invalid_argument);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  Tensor t(Shape{5});
  t[1] = 3.0f;
  t[3] = 3.0f;
  EXPECT_EQ(t.argmax(), 1u);
  t[4] = 4.0f;
  EXPECT_EQ(t.argmax(), 4u);
}

TEST(Tensor, SumIsAccurate) {
  // Kahan summation keeps the error tiny even with magnitude disparity.
  Tensor t(Shape{10001});
  t[0] = 1e7f;
  for (std::size_t i = 1; i < t.size(); ++i) t[i] = 0.1f;
  EXPECT_NEAR(t.sum(), 1e7f + 1000.0f, 1.0f);
}

TEST(Tensor, MinMaxEmptyThrows) {
  Tensor t;
  EXPECT_THROW(t.min(), std::logic_error);
  EXPECT_THROW(t.max(), std::logic_error);
}
