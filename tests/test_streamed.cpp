// Tests for the streamed-weights mode (off-chip parameters uploaded at
// start-up, vs the paper's hard-coded ROMs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "axi/block_design.hpp"
#include "core/framework.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga;
using nn::Shape;
using nn::Tensor;

namespace {
core::NetworkDescriptor streamed_descriptor(bool fixed = false) {
  core::NetworkDescriptor d;
  d.name = "streamed_net";
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  d.optimize = true;
  d.streamed_weights = true;
  if (fixed) d.precision = nn::NumericFormat::fixed_point(16, 8);
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 3;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}
}  // namespace

TEST(StreamedDescriptor, ParsesAndRoundTrips) {
  const auto d = core::NetworkDescriptor::from_json_text(R"({
    "weights_mode": "streamed",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})");
  EXPECT_TRUE(d.streamed_weights);
  EXPECT_TRUE(core::NetworkDescriptor::from_json(d.to_json()).streamed_weights);

  const auto hardcoded = core::NetworkDescriptor::from_json_text(R"({
    "weights_mode": "hardcoded",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})");
  EXPECT_FALSE(hardcoded.streamed_weights);

  EXPECT_THROW(core::NetworkDescriptor::from_json_text(R"({
    "weights_mode": "flash",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               core::DescriptorError);
}

TEST(StreamedCodegen, NoWeightLiteralsButLoadLoop) {
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(1);
  net.init_weights(rng);
  const std::string src = core::generate_cpp(d, net);

  EXPECT_EQ(src.find("static const float w_conv0"), std::string::npos);
  EXPECT_NE(src.find("static float w_conv0[27];"), std::string::npos);
  EXPECT_NE(src.find("int load_weights"), std::string::npos);
  EXPECT_NE(src.find("WLOAD_w_conv0:"), std::string::npos);
  EXPECT_NE(src.find("WLOAD_b_linear2:"), std::string::npos);
  EXPECT_NE(src.find("#pragma HLS INTERFACE s_axilite port=load_weights"), std::string::npos);
}

TEST(StreamedCodegen, SourceIsMuchSmallerThanHardcoded) {
  core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(2);
  net.init_weights(rng);
  const std::size_t streamed_size = core::generate_cpp(d, net).size();
  d.streamed_weights = false;
  const std::size_t hardcoded_size = core::generate_cpp(d, net).size();
  EXPECT_LT(streamed_size, hardcoded_size);  // weight literals dominate
}

TEST(StreamedCodegen, CompiledDesignMatchesReferenceBitForBit) {
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(3);
  net.init_weights(rng);

  const std::string dir = util::make_temp_dir("cnn2fpga-streamed");
  util::write_file(dir + "/gen.cpp", core::generate_cpp(d, net));
  const char* cxx = std::getenv("CXX");
  const std::string compiler = cxx != nullptr && *cxx != '\0' ? cxx : "c++";
  ASSERT_EQ(std::system(util::format("%s -O1 -std=c++17 -DCNN2FPGA_TESTBENCH "
                                     "-Wno-unknown-pragmas -o %s/gen_tb %s/gen.cpp 2> %s/cc.log",
                                     compiler.c_str(), dir.c_str(), dir.c_str(), dir.c_str())
                            .c_str()),
            0)
      << util::read_file(dir + "/cc.log");

  Tensor image(Shape{1, 8, 8});
  image.fill_uniform(rng, 0.0f, 1.0f);

  // stdin: all parameter words in params() order, then the image.
  std::string input;
  for (const nn::Param& p : net.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      input += util::format("%a\n", static_cast<double>((*p.value)[i]));
    }
  }
  for (std::size_t i = 0; i < image.size(); ++i) {
    input += util::format("%a\n", static_cast<double>(image[i]));
  }
  util::write_file(dir + "/in.txt", input);
  ASSERT_EQ(std::system(util::format("%s/gen_tb < %s/in.txt > %s/out.txt", dir.c_str(),
                                     dir.c_str(), dir.c_str())
                            .c_str()),
            0);

  const Tensor expected = net.forward(image);
  const auto lines = util::split(util::read_file(dir + "/out.txt"), '\n');
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(std::strtof(lines.at(k).c_str(), nullptr), expected[k]) << k;
  }
  std::filesystem::remove_all(dir);
}

TEST(StreamedHls, ReportsUploadCostAndRamArrays) {
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  const core::GeneratedDesign design = core::Framework::generate_with_random_weights(d, 4);
  // 3*1*3*3 + 3 + 27*4 + 4 = 142 parameters.
  EXPECT_GT(design.hls_report.weight_load_cycles, 142u);
  EXPECT_LT(design.hls_report.weight_load_cycles, 200u);
  EXPECT_NE(design.hls_report.to_string().find("weight upload"), std::string::npos);

  // BRAM footprint identical to the hard-coded variant (same tiles, ROM->RAM).
  core::NetworkDescriptor hardcoded = d;
  hardcoded.streamed_weights = false;
  const core::GeneratedDesign reference =
      core::Framework::generate_with_random_weights(hardcoded, 4);
  EXPECT_EQ(design.hls_report.usage.bram18, reference.hls_report.usage.bram18);
  EXPECT_EQ(reference.hls_report.weight_load_cycles, 0u);
}

TEST(StreamedFabric, ClassifyRequiresUpload) {
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(5);
  net.init_weights(rng);

  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard(),
                      nn::NumericFormat::float32(), /*streamed_weights=*/true);
  Tensor image(Shape{1, 8, 8});
  image.fill_uniform(rng, 0.0f, 1.0f);

  // Before the upload the core refuses to classify.
  EXPECT_FALSE(bd.classify(image).ok);
  bd.reset();  // drain the stalled input packet

  ASSERT_TRUE(bd.upload_weights());
  const axi::ClassifyResult hw = bd.classify(image);
  ASSERT_TRUE(hw.ok);
  EXPECT_EQ(hw.predicted, net.predict(image));
}

TEST(StreamedFabric, UploadOnHardcodedDesignIsRejected) {
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net = d.build_network();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_FALSE(bd.upload_weights());
}

TEST(StreamedFabric, UploadInstallsNewParameters) {
  // The headline benefit: swap networks without re-synthesis. Upload weights
  // from a *different* trained instance and observe the predictions change.
  const core::NetworkDescriptor d = streamed_descriptor();
  nn::Network net_a = d.build_network();
  util::Rng rng_a(6);
  net_a.init_weights(rng_a);
  nn::Network net_b = d.build_network();
  util::Rng rng_b(7);
  net_b.init_weights(rng_b);

  axi::BlockDesign bd(net_a, hls::DirectiveSet::optimized(), hls::zedboard(),
                      nn::NumericFormat::float32(), true);
  ASSERT_TRUE(bd.upload_weights());

  // Overwrite net_a's parameters with net_b's and re-upload.
  const auto pa = net_a.params();
  const auto pb = net_b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) *pa[i].value = *pb[i].value;
  ASSERT_TRUE(bd.upload_weights());

  util::Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    Tensor image(Shape{1, 8, 8});
    image.fill_uniform(rng, 0.0f, 1.0f);
    const axi::ClassifyResult hw = bd.classify(image);
    ASSERT_TRUE(hw.ok);
    EXPECT_EQ(hw.predicted, net_b.predict(image));
  }
}

TEST(StreamedFixed, FixedStreamedDesignGenerates) {
  const core::NetworkDescriptor d = streamed_descriptor(/*fixed=*/true);
  const core::GeneratedDesign design = core::Framework::generate_with_random_weights(d, 9);
  EXPECT_NE(design.cpp_source.find("static fixed_t w_conv0[27];"), std::string::npos);
  EXPECT_NE(design.cpp_source.find("q(in_stream.read())"), std::string::npos);
  EXPECT_GT(design.hls_report.weight_load_cycles, 0u);
}
