// Tests for the heterogeneous backend subsystem: the cost-model placer as a
// pure function over synthetic snapshots, EWMA latency tracking, dispatch
// queue gauges, cross-backend bit-exactness, and the accelerator's
// serial-invocation contract (one physical IP core) with its virtual clock.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/backend/accel_backend.hpp"
#include "serve/backend/cpu_backend.hpp"
#include "serve/backend/placer.hpp"
#include "serve/executor.hpp"
#include "serve/registry.hpp"
#include "util/rng.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::serve;

namespace {

core::NetworkDescriptor small_descriptor(const std::string& name) {
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

tensor::Tensor test_image(std::uint64_t seed, const nn::Shape& shape) {
  tensor::Tensor image{shape};
  util::Rng rng(seed);
  image.fill_uniform(rng, -1.0f, 1.0f);
  return image;
}

std::shared_ptr<DeployedDesign> deploy(DesignRegistry& registry, const std::string& name) {
  return registry.deploy_random(small_descriptor(name), 1).design;
}

}  // namespace

// -------------------------------------------------------------------- placer

TEST(Placer, CompletionCostScalesWithQueuePressure) {
  // estimate * (1 + pending/slots): each backlog-per-slot adds one
  // service-time of waiting ahead of the batch.
  EXPECT_DOUBLE_EQ(Placer::completion_cost(2.0, 0, 4), 2.0);
  EXPECT_DOUBLE_EQ(Placer::completion_cost(2.0, 4, 4), 4.0);
  EXPECT_DOUBLE_EQ(Placer::completion_cost(1.0, 3, 1), 4.0);
  // slots clamps to >= 1 instead of dividing by zero.
  EXPECT_DOUBLE_EQ(Placer::completion_cost(1.0, 2, 0), 3.0);
}

TEST(Placer, ScenarioTableCostModel) {
  struct Scenario {
    const char* why;
    double cpu_estimate;
    std::size_t cpu_pending;
    std::size_t cpu_slots;
    double accel_estimate;
    std::size_t accel_pending;
    BackendId expect_winner;
    bool expect_spill;
  };
  // The accelerator always has 1 slot: one physical IP core.
  const Scenario table[] = {
      {"both idle, CPU faster: fastest backend wins, no spill",
       0.001, 0, 4, 0.004, 0, BackendId::kCpu, false},
      {"both idle, accelerator faster (pipelined batch): it wins, no spill",
       0.004, 0, 4, 0.001, 0, BackendId::kAccelerator, false},
      {"CPU queue past the speed ratio: overflow spills to the idle fabric",
       0.001, 16, 4, 0.004, 0, BackendId::kAccelerator, true},
      {"CPU busy but under the ratio: still cheaper to wait for the CPU",
       0.001, 4, 4, 0.004, 0, BackendId::kCpu, false},
      {"fabric backed up: batches come home to the CPU",
       0.004, 0, 4, 0.001, 8, BackendId::kCpu, true},
      {"equal completion cost ties break toward snapshot order (CPU first)",
       0.002, 0, 1, 0.002, 0, BackendId::kCpu, false},
  };
  const Placer placer(PlacerPolicy::kCost);
  for (const Scenario& s : table) {
    const BackendSnapshot snapshots[] = {
        {BackendId::kCpu, s.cpu_estimate, s.cpu_pending, s.cpu_slots, true},
        {BackendId::kAccelerator, s.accel_estimate, s.accel_pending, 1, true},
    };
    const Placement placement = placer.place(snapshots);
    ASSERT_EQ(placement.ranked.size(), 2u) << s.why;
    EXPECT_EQ(placement.ranked.front().id, s.expect_winner) << s.why;
    // A spill is exactly "the chosen backend is not the raw-fastest one".
    EXPECT_EQ(placement.ranked.front().id != placement.fastest, s.expect_spill) << s.why;
  }
}

TEST(Placer, PolicyPinsTheBackend) {
  const BackendSnapshot snapshots[] = {
      {BackendId::kCpu, 0.010, 0, 4, true},  // the slower engine here
      {BackendId::kAccelerator, 0.001, 0, 1, true},
  };
  const Placer cpu_only(PlacerPolicy::kCpuOnly);
  EXPECT_TRUE(cpu_only.admits(BackendId::kCpu));
  EXPECT_FALSE(cpu_only.admits(BackendId::kAccelerator));
  Placement placement = cpu_only.place(snapshots);
  ASSERT_EQ(placement.ranked.size(), 1u);
  EXPECT_EQ(placement.ranked.front().id, BackendId::kCpu);
  // "fastest" ranges over admissible backends only: a pinned policy can
  // never report its own placement as a spill.
  EXPECT_EQ(placement.fastest, BackendId::kCpu);

  const Placer accel_only(PlacerPolicy::kAcceleratorOnly);
  EXPECT_FALSE(accel_only.admits(BackendId::kCpu));
  placement = accel_only.place(snapshots);
  ASSERT_EQ(placement.ranked.size(), 1u);
  EXPECT_EQ(placement.ranked.front().id, BackendId::kAccelerator);
}

TEST(Placer, InadmissibleSnapshotsAreSkipped) {
  const Placer placer(PlacerPolicy::kCost);
  const BackendSnapshot one_open[] = {
      {BackendId::kCpu, 0.001, 0, 4, false},  // breaker open
      {BackendId::kAccelerator, 0.004, 0, 1, true},
  };
  const Placement placement = placer.place(one_open);
  ASSERT_EQ(placement.ranked.size(), 1u);
  EXPECT_EQ(placement.ranked.front().id, BackendId::kAccelerator);

  const BackendSnapshot all_open[] = {
      {BackendId::kCpu, 0.001, 0, 4, false},
      {BackendId::kAccelerator, 0.004, 0, 1, false},
  };
  EXPECT_TRUE(placer.place(all_open).ranked.empty());
}

TEST(Placer, PolicyNamesRoundTripAndRejectGarbage) {
  for (const PlacerPolicy policy :
       {PlacerPolicy::kCost, PlacerPolicy::kCpuOnly, PlacerPolicy::kAcceleratorOnly}) {
    EXPECT_EQ(parse_placer_policy(placer_policy_name(policy)), policy);
  }
  EXPECT_EQ(parse_placer_policy("accel"), PlacerPolicy::kAcceleratorOnly);
  EXPECT_THROW(parse_placer_policy("gpu"), std::invalid_argument);
  EXPECT_THROW(parse_placer_policy(""), std::invalid_argument);
}

// ---------------------------------------------------------------------- ewma

TEST(Ewma, ZeroUntilFirstSampleThenSeeds) {
  EwmaSeconds ewma(0.5);
  EXPECT_FALSE(ewma.has_samples());
  EXPECT_DOUBLE_EQ(ewma.value(), 0.0);
  ewma.observe(0.010);
  EXPECT_TRUE(ewma.has_samples());
  // The first sample seeds the average outright instead of blending with 0.
  EXPECT_DOUBLE_EQ(ewma.value(), 0.010);
  ewma.observe(0.020);
  EXPECT_DOUBLE_EQ(ewma.value(), 0.015);  // 0.010 + 0.5 * (0.020 - 0.010)
  EXPECT_EQ(ewma.samples(), 2u);
}

TEST(Ewma, ConvergesTowardTheObservedLevel) {
  EwmaSeconds ewma;  // default alpha 0.2
  ewma.observe(0.100);
  for (int i = 0; i < 256; ++i) ewma.observe(0.004);
  EXPECT_NEAR(ewma.value(), 0.004, 1e-9);
}

// ------------------------------------------------------------------ backends

TEST(Backends, CapabilitiesDescribeTheEngines) {
  Executor executor(3);
  CpuBackend cpu(executor);
  EXPECT_EQ(cpu.id(), BackendId::kCpu);
  EXPECT_STREQ(cpu.name(), "cpu");
  EXPECT_EQ(cpu.capabilities().concurrency, 3u);
  EXPECT_FALSE(cpu.capabilities().modeled_latency);

  AcceleratorBackend accel({.sleep_for_model = false});
  EXPECT_EQ(accel.id(), BackendId::kAccelerator);
  EXPECT_STREQ(accel.name(), "accelerator");
  EXPECT_EQ(accel.capabilities().concurrency, 1u);  // one physical IP core
  EXPECT_TRUE(accel.capabilities().modeled_latency);
  EXPECT_TRUE(accel.capabilities().fixed_point);
}

TEST(Backends, CpuAndAcceleratorProduceIdenticalLogits) {
  // The generated IP is bit-exact with the reference network (the paper's
  // central claim), so placement must never change a prediction: both
  // backends return identical logits for identical inputs.
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_bitexact");
  Executor executor(2);
  CpuBackend cpu(executor);
  AcceleratorBackend accel({.sleep_for_model = false});

  std::vector<tensor::Tensor> images;
  for (int i = 0; i < 5; ++i) images.push_back(test_image(i, design->net.input_shape()));
  std::vector<const tensor::Tensor*> inputs;
  for (const tensor::Tensor& image : images) inputs.push_back(&image);

  std::vector<tensor::Tensor> via_cpu(images.size());
  std::vector<tensor::Tensor> via_accel(images.size());
  cpu.run_batch(*design, inputs, via_cpu);
  accel.run_batch(*design, inputs, via_accel);
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_EQ(via_cpu[i].size(), via_accel[i].size());
    for (std::size_t j = 0; j < via_cpu[i].size(); ++j) {
      EXPECT_EQ(via_cpu[i].data()[j], via_accel[i].data()[j])
          << "image " << i << " logit " << j;
    }
  }
}

TEST(Backends, CpuEstimateUsesParityPriorUntilMeasured) {
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_prior");
  Executor executor(2);
  CpuBackend cpu(executor);

  // Cold design: no measurement yet, so the estimate assumes parity with the
  // generated hardware's single-image latency — placement is then decided by
  // queue pressure, not a fictitious speed advantage.
  const double prior = design->invocation_seconds(1);
  EXPECT_DOUBLE_EQ(cpu.estimate_batch_seconds(*design, 3), prior * 3);

  std::vector<tensor::Tensor> images;
  for (int i = 0; i < 2; ++i) images.push_back(test_image(i, design->net.input_shape()));
  std::vector<const tensor::Tensor*> inputs{&images[0], &images[1]};
  std::vector<tensor::Tensor> outputs(2);
  cpu.run_batch(*design, inputs, outputs);

  // One measured batch replaces the prior with the EWMA of real wall time.
  const BackendServeState& state = design->backend_state(BackendId::kCpu);
  ASSERT_TRUE(state.measured_seconds_per_image.has_samples());
  EXPECT_DOUBLE_EQ(cpu.estimate_batch_seconds(*design, 3),
                   state.measured_seconds_per_image.value() * 3);
}

TEST(Backends, AcceleratorEstimateIsTheInvocationModel) {
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_model");
  AcceleratorBackend accel({.sleep_for_model = false});
  for (const std::size_t images : {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
    EXPECT_DOUBLE_EQ(accel.estimate_batch_seconds(*design, images),
                     design->invocation_seconds(images));
  }
}

TEST(Backends, AcceleratorVirtualClockAdvancesByTheModel) {
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_clock");
  AcceleratorBackend accel({.sleep_for_model = false});

  std::vector<tensor::Tensor> images;
  for (int i = 0; i < 4; ++i) images.push_back(test_image(i, design->net.input_shape()));
  std::vector<const tensor::Tensor*> inputs;
  for (const tensor::Tensor& image : images) inputs.push_back(&image);
  std::vector<tensor::Tensor> outputs(4);
  accel.run_batch(*design, inputs, outputs);
  EXPECT_EQ(accel.invocations(), 1u);
  std::uint64_t expected =
      static_cast<std::uint64_t>(design->invocation_seconds(4) * 1e6);
  EXPECT_EQ(accel.virtual_clock_us(), expected);

  std::vector<const tensor::Tensor*> one{inputs[0]};
  std::vector<tensor::Tensor> out_one(1);
  accel.run_batch(*design, one, out_one);
  expected += static_cast<std::uint64_t>(design->invocation_seconds(1) * 1e6);
  EXPECT_EQ(accel.invocations(), 2u);
  EXPECT_EQ(accel.virtual_clock_us(), expected);
  EXPECT_EQ(accel.max_observed_concurrency(), 1u);
}

TEST(Backends, AcceleratorSerializesConcurrentDispatches) {
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_serial");
  AcceleratorBackend accel({.sleep_for_model = false});
  const nn::Shape shape = design->net.input_shape();

  // Flood the driver queue; every invocation must run alone on the modeled
  // core even though dispatches arrive faster than they execute.
  constexpr std::size_t kBatches = 16;
  std::vector<tensor::Tensor> images;
  std::vector<tensor::Tensor> outputs(kBatches);
  for (std::size_t i = 0; i < kBatches; ++i) images.push_back(test_image(i, shape));
  std::vector<std::promise<void>> done(kBatches);
  for (std::size_t i = 0; i < kBatches; ++i) {
    accel.dispatch([&, i] {
      const tensor::Tensor* input = &images[i];
      accel.run_batch(*design, std::span<const tensor::Tensor* const>(&input, 1),
                      std::span<tensor::Tensor>(&outputs[i], 1));
      done[i].set_value();
    });
  }
  for (std::promise<void>& batch : done) batch.get_future().wait();
  EXPECT_EQ(accel.invocations(), kBatches);
  EXPECT_EQ(accel.max_observed_concurrency(), 1u);
  // The inflight gauge drops after the task body (which fulfilled the last
  // promise above) returns to the dispatch wrapper — spin briefly for it.
  for (int spin = 0; spin < 10000 && accel.pending() != 0; ++spin) {
    std::this_thread::yield();
  }
  EXPECT_EQ(accel.pending(), 0u);
}

TEST(Backends, OverlappingInvocationsViolateThePhysicalCoreContract) {
  DesignRegistry registry(4);
  const auto design = deploy(registry, "bx_overlap");
  // sleep_for_model keeps the first invocation inside run_batch() for the
  // whole modeled duration, and invocations() ticks *before* that sleep: once
  // it reads 1 the core is still busy, so a second call that bypasses
  // dispatch() overlaps deterministically and must throw.
  AcceleratorBackend accel({.sleep_for_model = true});
  const nn::Shape shape = design->net.input_shape();

  std::size_t batch = 16;
  while (design->invocation_seconds(batch) < 0.005 && batch < 4096) batch *= 2;
  ASSERT_GE(design->invocation_seconds(batch), 0.005)
      << "modeled invocation too fast to hold the core busy for the test";

  std::vector<tensor::Tensor> images;
  for (std::size_t i = 0; i < batch; ++i) images.push_back(test_image(i, shape));
  std::vector<const tensor::Tensor*> inputs;
  for (const tensor::Tensor& image : images) inputs.push_back(&image);
  std::vector<tensor::Tensor> outputs(batch);
  std::thread first([&] { accel.run_batch(*design, inputs, outputs); });
  while (accel.invocations() == 0) std::this_thread::yield();

  tensor::Tensor image = test_image(99, shape);
  const tensor::Tensor* input = &image;
  tensor::Tensor out;
  EXPECT_THROW(accel.run_batch(*design, std::span<const tensor::Tensor* const>(&input, 1),
                               std::span<tensor::Tensor>(&out, 1)),
               std::logic_error);
  first.join();
  EXPECT_GE(accel.max_observed_concurrency(), 2u);  // the overlap was observed
  EXPECT_EQ(accel.invocations(), 1u);               // and the violator never completed
}

TEST(Backends, DispatchMaintainsQueueGauges) {
  AcceleratorBackend accel({.sleep_for_model = false});
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::promise<void> started;
  accel.dispatch([&, open] {
    started.set_value();
    open.wait();
  });
  started.get_future().wait();
  accel.dispatch([open] { open.wait(); });
  accel.dispatch([open] { open.wait(); });
  EXPECT_EQ(accel.inflight(), 1u);  // one on the driver thread
  EXPECT_EQ(accel.queued(), 2u);    // two behind it
  EXPECT_EQ(accel.pending(), 3u);
  gate.set_value();
  accel.shutdown();  // graceful: drains the two queued tasks before joining
  EXPECT_EQ(accel.pending(), 0u);
  EXPECT_THROW(accel.dispatch([] {}), std::runtime_error);
  EXPECT_EQ(accel.queued(), 0u);  // a refused dispatch is never counted queued
}
