// Tests for the synthesizable C++ emitter, including the central equivalence
// property of the paper's evaluation: the generated design produces the exact
// outputs of the reference software (Sec. V-A: "hardware implementation is as
// accurate as software one").
//
// The equivalence test compiles the generated file with the host compiler
// (-DCNN2FPGA_TESTBENCH) and pipes random images through it as hex floats,
// comparing scores and prediction bit-for-bit against src/nn.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/codegen_cpp.hpp"
#include "core/framework.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga::core;
using cnn2fpga::nn::Network;
using cnn2fpga::nn::Shape;
using cnn2fpga::nn::Tensor;
using cnn2fpga::util::format;

namespace {

NetworkDescriptor small_descriptor(bool optimize) {
  NetworkDescriptor d;
  d.name = "codegen_test";
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  d.optimize = optimize;
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 3;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMax, 2, 2};
  LayerSpec lin;
  lin.type = LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

/// Runs a shell command; returns exit status.
int run(const std::string& command) { return std::system(command.c_str()); }

/// Compile generated source as a testbench binary. Returns binary path.
std::string compile_testbench(const std::string& dir, const std::string& source) {
  const std::string src_path = dir + "/gen.cpp";
  const std::string bin_path = dir + "/gen_tb";
  cnn2fpga::util::write_file(src_path, source);
  const char* cxx = std::getenv("CXX");
  const std::string compiler = cxx != nullptr && *cxx != '\0' ? cxx : "c++";
  const std::string cmd = format(
      "%s -O1 -std=c++17 -DCNN2FPGA_TESTBENCH -Wno-unknown-pragmas -o %s %s 2> %s/cc.log",
      compiler.c_str(), bin_path.c_str(), src_path.c_str(), dir.c_str());
  EXPECT_EQ(run(cmd), 0) << "compiler output:\n"
                         << cnn2fpga::util::read_file(dir + "/cc.log");
  return bin_path;
}

struct TestbenchResult {
  std::vector<float> scores;
  int predicted = -1;
};

/// Feed one image to the compiled testbench, parse its hex-float output.
TestbenchResult run_testbench(const std::string& dir, const std::string& bin,
                              const Tensor& image, std::size_t classes) {
  const std::string in_path = dir + "/input.txt";
  const std::string out_path = dir + "/output.txt";
  std::string input;
  for (std::size_t i = 0; i < image.size(); ++i) {
    input += format("%a\n", static_cast<double>(image[i]));
  }
  cnn2fpga::util::write_file(in_path, input);
  EXPECT_EQ(run(format("%s < %s > %s", bin.c_str(), in_path.c_str(), out_path.c_str())), 0);

  TestbenchResult result;
  const auto lines = cnn2fpga::util::split(cnn2fpga::util::read_file(out_path), '\n');
  for (std::size_t k = 0; k < classes; ++k) {
    result.scores.push_back(std::strtof(lines.at(k).c_str(), nullptr));
  }
  result.predicted = static_cast<int>(std::strtol(lines.at(classes).c_str(), nullptr, 10));
  return result;
}

}  // namespace

TEST(Codegen, FloatLiteralRoundTripsExactly) {
  cnn2fpga::util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 100.0));
    const std::string lit = float_literal(v);
    const float parsed = std::strtof(lit.c_str(), nullptr);
    EXPECT_EQ(parsed, v) << lit;
  }
  EXPECT_EQ(std::strtof(float_literal(0.0f).c_str(), nullptr), 0.0f);
  EXPECT_EQ(std::strtof(float_literal(-1.0f).c_str(), nullptr), -1.0f);
  EXPECT_NE(float_literal(std::nanf("")).find("non-finite"), std::string::npos);
}

TEST(Codegen, EmitsAllStructuralSections) {
  const NetworkDescriptor d = small_descriptor(false);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(2);
  net.init_weights(rng);
  const std::string src = generate_cpp(d, net);

  EXPECT_NE(src.find("static const float w_conv0["), std::string::npos);
  EXPECT_NE(src.find("static const float b_conv0["), std::string::npos);
  EXPECT_NE(src.find("static const float w_linear2["), std::string::npos);
  EXPECT_NE(src.find("int cnn_core(const float in[64], float scores[4])"), std::string::npos);
  EXPECT_NE(src.find("LogSoftMax"), std::string::npos);
  EXPECT_NE(src.find("ARGMAX:"), std::string::npos);
  EXPECT_NE(src.find("int cnn_xtop(float_stream &in_stream"), std::string::npos);
  EXPECT_NE(src.find("#pragma HLS INTERFACE axis port=in_stream"), std::string::npos);
  EXPECT_NE(src.find("CNN2FPGA_TESTBENCH"), std::string::npos);
}

TEST(Codegen, NaiveModeHasNoOptimizationPragmas) {
  const NetworkDescriptor d = small_descriptor(false);
  Network net = d.build_network();
  const std::string src = generate_cpp(d, net);
  EXPECT_EQ(src.find("#pragma HLS PIPELINE"), std::string::npos);
  EXPECT_EQ(src.find("#pragma HLS DATAFLOW"), std::string::npos);
}

TEST(Codegen, OptimizedModeCarriesDirectives) {
  const NetworkDescriptor d = small_descriptor(true);
  Network net = d.build_network();
  const std::string src = generate_cpp(d, net);
  EXPECT_NE(src.find("#pragma HLS DATAFLOW"), std::string::npos);
  EXPECT_NE(src.find("#pragma HLS PIPELINE II=1"), std::string::npos);
}

TEST(Codegen, StructureMismatchRejected) {
  const NetworkDescriptor d = small_descriptor(false);
  Network wrong(Shape{1, 8, 8});
  wrong.add_linear(4);
  wrong.add_logsoftmax();
  EXPECT_THROW(generate_cpp(d, wrong), DescriptorError);
}

TEST(Codegen, WeightCountMatchesNetwork) {
  const NetworkDescriptor d = small_descriptor(false);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(3);
  net.init_weights(rng);
  const std::string src = generate_cpp(d, net);
  // conv weights: 3*1*3*3 = 27 floats.
  EXPECT_NE(src.find("w_conv0[27]"), std::string::npos);
  // linear: input 3*3*3=27 -> 4 neurons = 108 weights.
  EXPECT_NE(src.find("w_linear2[108]"), std::string::npos);
}

TEST(Codegen, GeneratedCodeMatchesReferenceBitForBit) {
  const NetworkDescriptor d = small_descriptor(true);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(4);
  net.init_weights(rng);

  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-codegen");
  const std::string bin = compile_testbench(dir, generate_cpp(d, net));

  for (int trial = 0; trial < 5; ++trial) {
    Tensor image(Shape{1, 8, 8});
    image.fill_uniform(rng, 0.0f, 1.0f);
    const Tensor expected = net.forward(image);
    const TestbenchResult actual = run_testbench(dir, bin, image, 4);

    ASSERT_EQ(actual.scores.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual.scores[k], expected[k])
          << "score " << k << " differs (trial " << trial << ")";
    }
    EXPECT_EQ(static_cast<std::size_t>(actual.predicted), expected.argmax());
  }
  std::filesystem::remove_all(dir);
}

TEST(Codegen, NaiveAndOptimizedAreFunctionallyIdentical) {
  // Directives change timing/resources, never results (paper: both variants
  // report the same predicted error).
  NetworkDescriptor d = small_descriptor(false);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(5);
  net.init_weights(rng);

  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-codegen");
  const std::string bin_naive = compile_testbench(dir + std::string(), generate_cpp(d, net));
  d.optimize = true;
  const std::string dir2 = cnn2fpga::util::make_temp_dir("cnn2fpga-codegen");
  const std::string bin_opt = compile_testbench(dir2, generate_cpp(d, net));

  Tensor image(Shape{1, 8, 8});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const TestbenchResult a = run_testbench(dir, bin_naive, image, 4);
  const TestbenchResult b = run_testbench(dir2, bin_opt, image, 4);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t k = 0; k < a.scores.size(); ++k) EXPECT_EQ(a.scores[k], b.scores[k]);
  EXPECT_EQ(a.predicted, b.predicted);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(Codegen, MultiLayerNetworkWithTanhCompilesAndMatches) {
  NetworkDescriptor d;
  d.name = "deep";
  d.input_channels = 2;
  d.input_height = 10;
  d.input_width = 10;
  d.optimize = true;
  LayerSpec conv1;
  conv1.type = LayerSpec::Type::kConv;
  conv1.conv.feature_maps_out = 4;
  conv1.conv.kernel_h = conv1.conv.kernel_w = 3;
  conv1.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMean, 2, 2};
  LayerSpec lin1;
  lin1.type = LayerSpec::Type::kLinear;
  lin1.linear.neurons = 8;
  lin1.linear.activation = cnn2fpga::nn::ActKind::kTanh;
  LayerSpec lin2;
  lin2.type = LayerSpec::Type::kLinear;
  lin2.linear.neurons = 3;
  d.layers = {conv1, lin1, lin2};

  Network net = d.build_network();
  cnn2fpga::util::Rng rng(6);
  net.init_weights(rng);

  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-codegen");
  const std::string bin = compile_testbench(dir, generate_cpp(d, net));
  Tensor image(Shape{2, 10, 10});
  image.fill_uniform(rng, -1.0f, 1.0f);
  const Tensor expected = net.forward(image);
  const TestbenchResult actual = run_testbench(dir, bin, image, 3);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(actual.scores[k], expected[k]);
  std::filesystem::remove_all(dir);
}
