// Tests for the inference-serving runtime: registry LRU + hit/miss
// accounting, micro-batching flush behavior, deterministic predictions under
// concurrent clients, metrics consistency, and the hardened HTTP transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "json/json.hpp"
#include "nn/fixed_inference.hpp"
#include "serve/server.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "web/api.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::serve;
namespace json = cnn2fpga::json;

namespace {

core::NetworkDescriptor small_descriptor(const std::string& name) {
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

tensor::Tensor test_image(std::uint64_t seed, const nn::Shape& shape) {
  tensor::Tensor image{shape};
  util::Rng rng(seed);
  image.fill_uniform(rng, -1.0f, 1.0f);
  return image;
}

std::string deploy_body(const std::string& name, int seed = 7) {
  return util::format(
      R"({"name": "%s", "board": "zedboard", "optimize": true, "seed": %d,
          "input": {"channels": 1, "height": 8, "width": 8},
          "layers": [
            {"type": "conv", "feature_maps_out": 2, "kernel": 3,
             "pool": {"type": "max", "kernel": 2, "step": 2}},
            {"type": "linear", "neurons": 4}
          ]})",
      name.c_str(), seed);
}

/// Occupy every worker of `executor` until the returned promise is fulfilled.
/// With all workers parked, submitted batches queue up instead of executing,
/// which lets tests control exactly when execution happens (the replacement
/// for grabbing the old per-design execution lock, which no longer exists).
std::shared_ptr<std::promise<void>> park_workers(Executor& executor) {
  auto gate = std::make_shared<std::promise<void>>();
  std::shared_future<void> open = gate->get_future().share();
  for (std::size_t i = 0; i < executor.thread_count(); ++i) {
    executor.submit([open] { open.wait(); });
  }
  return gate;
}

}  // namespace

// ------------------------------------------------------------------ registry

TEST(Registry, DeployMissThenHit) {
  DesignRegistry registry(4);
  const auto first = registry.deploy_random(small_descriptor("net_a"), 1);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_NE(first.design, nullptr);
  EXPECT_EQ(first.design->id.size(), 16u);

  const auto second = registry.deploy_random(small_descriptor("net_a"), 1);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.design.get(), first.design.get());  // same warm instance

  // Different seed => different weights => different content hash.
  const auto third = registry.deploy_random(small_descriptor("net_a"), 2);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_NE(third.design->id, first.design->id);

  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
}

TEST(Registry, ExplicitWeightsContentAddressing) {
  DesignRegistry registry(4);
  const core::NetworkDescriptor descriptor = small_descriptor("net_w");
  nn::Network net = descriptor.build_network();
  util::Rng rng(5);
  net.init_weights(rng);
  const auto blob = nn::serialize_weights(net);

  const auto first = registry.deploy(descriptor, blob);
  EXPECT_FALSE(first.cache_hit);
  // Seed 5 expands to the identical blob: content-addressing collapses the
  // random-weights deploy onto the explicit-weights one.
  const auto second = registry.deploy_random(descriptor, 5);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.design.get(), first.design.get());
}

TEST(Registry, LruEvictionDropsLeastRecentlyUsed) {
  DesignRegistry registry(2);
  const auto a = registry.deploy_random(small_descriptor("net_a"), 1);
  const auto b = registry.deploy_random(small_descriptor("net_b"), 1);
  EXPECT_EQ(registry.size(), 2u);

  // Touch A so B becomes the LRU victim.
  EXPECT_TRUE(registry.deploy_random(small_descriptor("net_a"), 1).cache_hit);
  const auto c = registry.deploy_random(small_descriptor("net_c"), 1);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.find(a.design->id), nullptr);
  EXPECT_EQ(registry.find(b.design->id), nullptr);  // evicted
  EXPECT_NE(registry.find(c.design->id), nullptr);
  EXPECT_EQ(registry.stats().evictions, 1u);

  // Redeploying the evicted design is a miss again (it was regenerated).
  EXPECT_FALSE(registry.deploy_random(small_descriptor("net_b"), 1).cache_hit);
}

TEST(Registry, ListIsMostRecentlyUsedFirst) {
  DesignRegistry registry(4);
  registry.deploy_random(small_descriptor("net_a"), 1);
  const auto b = registry.deploy_random(small_descriptor("net_b"), 1);
  registry.deploy_random(small_descriptor("net_a"), 1);  // touch A
  const auto designs = registry.list();
  ASSERT_EQ(designs.size(), 2u);
  EXPECT_EQ(designs[0]->descriptor().name, "net_a");
  EXPECT_EQ(designs[1]->descriptor().name, "net_b");
  EXPECT_EQ(designs[1].get(), b.design.get());
}

// ------------------------------------------------------------------- batcher

TEST(Batcher, FlushesImmediatelyWhenDesignIdle) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  // Huge batch and deadline: only the idle-design trigger can flush.
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto future = batcher.predict(design, test_image(0, design->net.input_shape()));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(future.get().batch_size, 1u);  // no batching latency when unloaded
  batcher.shutdown();
}

TEST(Batcher, FlushesWhenMaxBatchReached) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  // Deadline far away and a single inference slot: only idle-flush and the
  // max_batch trigger can flush.
  Batcher batcher(executor,
                  {/*max_batch=*/4, /*max_wait_us=*/60'000'000, /*max_inflight=*/1}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // Park the workers: the first request flushes immediately (free slot) and
  // its batch queues; the next 4 coalesce until max_batch.
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  std::vector<std::future<Prediction>> coalesced;
  for (int i = 1; i <= 4; ++i) {
    coalesced.push_back(batcher.predict(design, test_image(i, design->net.input_shape())));
  }
  EXPECT_EQ(batcher.pending(), 0u);  // 4th request hit max_batch and flushed
  gate->set_value();

  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().batch_size, 1u);
  for (auto& future : coalesced) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future.get().batch_size, 4u);
  }
  EXPECT_EQ(metrics.batches.value(), 2u);
  EXPECT_EQ(metrics.predictions.value(), 5u);
  batcher.shutdown();
}

TEST(Batcher, ModeledAcceleratorTimeAmortizesAcrossBatch) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor,
                  {/*max_batch=*/4, /*max_wait_us=*/60'000'000, /*max_inflight=*/1}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // A lone image pays a blocking DMA round trip; a coalesced batch of 4 is one
  // scatter-gather invocation whose cost splits across the batch.
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  std::vector<std::future<Prediction>> coalesced;
  for (int i = 1; i <= 4; ++i) {
    coalesced.push_back(batcher.predict(design, test_image(i, design->net.input_shape())));
  }
  gate->set_value();

  const auto single_us = static_cast<std::uint64_t>(design->invocation_seconds(1) * 1e6);
  const auto share_us =
      static_cast<std::uint64_t>(design->invocation_seconds(4) * 1e6 / 4.0);
  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().accel_us, single_us);
  for (auto& future : coalesced) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future.get().accel_us, share_us);
  }
  EXPECT_LT(share_us, single_us);  // batching must win on the modeled hardware
  EXPECT_EQ(design->invocation_seconds(0), 0.0);
  batcher.shutdown();
}

TEST(Batcher, FlushesPartialBatchOnDeadline) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/2000, /*max_inflight=*/1},
                  &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // Park the workers and fill the design's one slot so the two coalescing
  // requests can only leave the lane via the 2 ms deadline (they never reach
  // max_batch = 64).
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  auto second = batcher.predict(design, test_image(1, design->net.input_shape()));
  auto third = batcher.predict(design, test_image(2, design->net.input_shape()));
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (batcher.pending() != 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(batcher.pending(), 0u);  // deadline thread flushed the partial lane
  gate->set_value();

  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().batch_size, 1u);
  for (auto* future : {&second, &third}) {
    ASSERT_EQ(future->wait_for(std::chrono::seconds(30)), std::future_status::ready);
    const Prediction prediction = future->get();
    EXPECT_EQ(prediction.batch_size, 2u);
    EXPECT_LT(prediction.predicted, 4u);
  }
  EXPECT_EQ(metrics.batches.value(), 2u);
  batcher.shutdown();
}

TEST(Batcher, ShutdownDrainsPendingRequests) {
  DesignRegistry registry(4);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto future = batcher.predict(design, test_image(0, design->net.input_shape()));
  batcher.shutdown();  // must flush the half-full lane, not abandon it
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get().batch_size, 1u);
  EXPECT_THROW(batcher.predict(design, test_image(0, design->net.input_shape())),
               std::runtime_error);
}

TEST(Batcher, RejectsWrongInputShape) {
  DesignRegistry registry(4);
  Executor executor(1);
  Batcher batcher(executor, {4, 1000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;
  EXPECT_THROW(batcher.predict(design, tensor::Tensor{nn::Shape{1, 4, 4}}),
               std::invalid_argument);
}

TEST(Batcher, DispatchesParallelBatchesForOneDesign) {
  // With the per-design execution lock gone, one design may have as many
  // batches in flight as the executor has workers. Park both workers: two
  // back-to-back requests must BOTH dispatch immediately (two in-flight
  // batches of one), instead of the second coalescing behind the first.
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000}, &metrics);
  EXPECT_EQ(batcher.inflight_limit(), 2u);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  auto second = batcher.predict(design, test_image(1, design->net.input_shape()));
  EXPECT_EQ(batcher.pending(), 0u);  // both flushed despite neither completing
  // A third request finds both slots occupied and coalesces.
  auto third = batcher.predict(design, test_image(2, design->net.input_shape()));
  EXPECT_EQ(batcher.pending(), 1u);
  gate->set_value();

  for (auto* future : {&first, &second, &third}) {
    ASSERT_EQ(future->wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future->get().batch_size, 1u);
  }
  EXPECT_EQ(metrics.batches.value(), 3u);
  batcher.shutdown();
}

TEST(Batcher, ContextPoolGrowsOnlyToPeakParallelism) {
  // Sequential traffic through one design must keep reusing a single leased
  // context rather than materializing one per request.
  DesignRegistry registry(4);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/8, /*max_wait_us=*/1000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;
  for (int i = 0; i < 6; ++i) {
    batcher.predict(design, test_image(i, design->net.input_shape())).get();
  }
  EXPECT_LE(design->contexts.created(), 2u);
  batcher.shutdown();
}

// ------------------------------------------------------- bounded admission

TEST(Batcher, ShedsAtQueueDepthCapAndRecovers) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  BatcherConfig config;
  config.max_batch = 64;
  config.max_wait_us = 60'000'000;
  config.max_inflight_per_design = 1;
  config.max_queue_depth = 3;
  Batcher batcher(executor, config, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_shed"), 1).design;

  // Parked workers: nothing executes, so every admitted request stays in the
  // waiting set and the cap is reached deterministically.
  auto gate = park_workers(executor);
  std::vector<std::future<Prediction>> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(batcher.predict(design, test_image(i, design->net.input_shape())));
  }
  EXPECT_EQ(batcher.waiting(), 3u);
  EXPECT_THROW(batcher.predict(design, test_image(9, design->net.input_shape())),
               OverloadedError);
  EXPECT_EQ(metrics.shed.value(), 1u);
  EXPECT_EQ(metrics.admitted.value(), 3u);
  EXPECT_LE(metrics.queue_depth.peak(), 3u);

  // Shedding rejects the overflow request only; everything admitted executes
  // and the queue drains back to accepting traffic.
  gate->set_value();
  for (auto& future : admitted) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_NO_THROW(future.get());
  }
  auto after = batcher.predict(design, test_image(10, design->net.input_shape()));
  ASSERT_EQ(after.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_NO_THROW(after.get());
  batcher.shutdown();
}

TEST(Batcher, PerDesignCapShedsOnlyTheHotDesign) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  BatcherConfig config;
  config.max_batch = 64;
  config.max_wait_us = 60'000'000;
  config.max_inflight_per_design = 1;
  config.max_queue_depth_per_design = 1;
  Batcher batcher(executor, config, &metrics);
  const auto hot = registry.deploy_random(small_descriptor("net_hot"), 1).design;
  const auto cold = registry.deploy_random(small_descriptor("net_cold"), 2).design;

  auto gate = park_workers(executor);
  auto admitted = batcher.predict(hot, test_image(0, hot->net.input_shape()));
  EXPECT_THROW(batcher.predict(hot, test_image(1, hot->net.input_shape())),
               OverloadedError);
  // The cold design has its own budget and is unaffected.
  auto other = batcher.predict(cold, test_image(2, cold->net.input_shape()));
  gate->set_value();
  EXPECT_NO_THROW(admitted.get());
  EXPECT_NO_THROW(other.get());
  batcher.shutdown();
}

// ----------------------------------------------------- deadline propagation

TEST(Batcher, RejectsAlreadyExpiredDeadlineAtEnqueue) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(1);
  Batcher batcher(executor, {/*max_batch=*/8, /*max_wait_us=*/1000}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_dead"), 1).design;
  EXPECT_THROW(batcher.predict(design, test_image(0, design->net.input_shape()),
                               Batcher::Clock::now() - std::chrono::milliseconds(1)),
               DeadlineExceededError);
  EXPECT_EQ(metrics.expired.value(), 1u);
  batcher.shutdown();
}

TEST(Batcher, DropsRequestsThatExpireBeforeExecution) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_exp"), 1).design;

  // The request flushes immediately (idle design) but the workers are parked,
  // so its 20 ms budget expires in the executor queue; the dispatch-time
  // re-check must fail it without running inference.
  auto gate = park_workers(executor);
  auto doomed = batcher.predict(design, test_image(0, design->net.input_shape()),
                                Batcher::Clock::now() + std::chrono::milliseconds(20));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  gate->set_value();
  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_THROW(doomed.get(), DeadlineExceededError);
  EXPECT_EQ(metrics.expired.value(), 1u);
  EXPECT_EQ(design->served.load(), 0u);
  // An all-expired batch is no verdict on design health.
  EXPECT_EQ(design->breaker.state(), BreakerState::kClosed);
  batcher.shutdown();
}

// ---------------------------------------------------------- circuit breaker

TEST(Breaker, OpensAfterConsecutiveFailuresAndProbesClosed) {
  Breaker breaker({/*failure_threshold=*/2, /*cooldown_ms=*/50});
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());

  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // below threshold
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allow());
  EXPECT_GT(breaker.retry_after_ms(), 0u);
  EXPECT_LE(breaker.retry_after_ms(), 50u);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(breaker.allow());  // cooldown elapsed: this request is the probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow());  // one probe at a time
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.allow());
}

TEST(Breaker, FailedProbeReopensAbandonedProbeFreesSlot) {
  Breaker breaker({/*failure_threshold=*/1, /*cooldown_ms=*/30});
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // probe failed: quarantine again
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow());  // cooldown restarted

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow());
  breaker.record_abandoned();  // probe batch fully expired: no verdict
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow());  // slot freed for the next probe
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(Breaker, StragglerSuccessWhileOpenDoesNotClose) {
  Breaker breaker({/*failure_threshold=*/1, /*cooldown_ms=*/10'000});
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // A batch admitted before the trip completes fine: recovery must still go
  // through a half-open probe, not a lucky straggler.
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
}

// ------------------------------------------- concurrent client determinism

TEST(Serving, ConcurrentPredictionsMatchSequentialInference) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 12;

  ServingConfig config;
  config.worker_threads = 4;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  ServingRuntime runtime(config);

  const core::NetworkDescriptor descriptor = small_descriptor("net_det");
  const auto design = runtime.registry().deploy_random(descriptor, 3).design;

  // Reference: the same weights run sequentially through a private network on
  // the same kernel engine serving dispatches to. Exact equality below then
  // asserts the engine's contract that batched serving execution is
  // bit-identical to sequential per-image inference.
  nn::Network reference = descriptor.build_network();
  nn::deserialize_weights(reference, design->weights);
  nn::ExecutionContext ref_ctx(reference);
  std::vector<tensor::Tensor> images;
  std::vector<std::size_t> expected_class;
  std::vector<tensor::Tensor> expected_scores;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    images.push_back(test_image(i, reference.input_shape()));
    tensor::Tensor scores = reference.infer(images.back(), ref_ctx);
    expected_class.push_back(scores.argmax());
    expected_scores.push_back(std::move(scores));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t index = c * kPerClient + i;
        const Prediction prediction =
            runtime.batcher().predict(design, images[index]).get();
        if (prediction.predicted != expected_class[index]) mismatches.fetch_add(1);
        const auto& scores = expected_scores[index];
        for (std::size_t k = 0; k < prediction.logits.size(); ++k) {
          if (prediction.logits[k] != scores[k]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Metrics must account for exactly the traffic sent.
  const ServeMetrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.predictions.value(), kClients * kPerClient);
  EXPECT_EQ(metrics.predict_errors.value(), 0u);
  EXPECT_GE(metrics.batches.value(), (kClients * kPerClient + 7) / 8);
  EXPECT_EQ(metrics.batch_size.sum(), kClients * kPerClient);
  EXPECT_EQ(metrics.queue_us.count(), kClients * kPerClient);
  EXPECT_EQ(design->served.load(), kClients * kPerClient);
  runtime.shutdown();
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, HistogramPercentilesAndCounters) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.max(), 100u);
  // Log2 buckets: percentiles are upper bounds of the containing bucket.
  EXPECT_LE(h.percentile(0.5), 63u);
  EXPECT_GE(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 100u);  // clamped to the observed max
  const auto snapshot = h.to_json();
  EXPECT_EQ(snapshot.at("count").as_int(), 100);
  EXPECT_EQ(snapshot.at("max").as_int(), 100);
}

TEST(Metrics, ServeMetricsJsonShape) {
  ServeMetrics metrics;
  metrics.deploys.add(4);
  metrics.deploy_cache_hits.add(3);
  metrics.predictions.add(10);
  metrics.batches.add(2);
  metrics.batch_size.record(5);
  metrics.batch_size.record(5);
  const auto doc = json::parse(metrics.to_json_text());
  EXPECT_EQ(doc.at("deploy").at("total").as_int(), 4);
  EXPECT_EQ(doc.at("deploy").at("cache_hits").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("deploy").at("cache_hit_rate").as_double(), 0.75);
  EXPECT_EQ(doc.at("predict").at("total").as_int(), 10);
  EXPECT_EQ(doc.at("predict").at("batch_size").at("count").as_int(), 2);
}

// ------------------------------------------------------- HTTP API handlers

TEST(ServeApi, DeployPredictRoundTripMatchesDirectInference) {
  ServingRuntime runtime;

  web::HttpRequest deploy;
  deploy.body = deploy_body("api_serve");
  const web::HttpResponse deployed = runtime.handle_deploy(deploy);
  ASSERT_EQ(deployed.status, 200) << deployed.body;
  const auto deploy_doc = json::parse(deployed.body);
  const std::string design_id = deploy_doc.at("design_id").as_string();
  EXPECT_FALSE(deploy_doc.at("cache_hit").as_bool());
  EXPECT_TRUE(deploy_doc.at("fits").as_bool());

  // Second deploy of the same body: cache hit, same id.
  const auto redeploy_doc = json::parse(runtime.handle_deploy(deploy).body);
  EXPECT_TRUE(redeploy_doc.at("cache_hit").as_bool());
  EXPECT_EQ(redeploy_doc.at("design_id").as_string(), design_id);

  // Direct reference inference with the deployed weights.
  const auto design = runtime.registry().find(design_id);
  ASSERT_NE(design, nullptr);
  nn::Network reference = design->descriptor().build_network();
  nn::deserialize_weights(reference, design->weights);
  const tensor::Tensor image = test_image(42, reference.input_shape());
  nn::ExecutionContext ref_ctx(reference);
  const tensor::Tensor expected = reference.infer(image, ref_ctx);

  // Served prediction via the JSON API (base64 float32 CHW payload).
  std::vector<std::uint8_t> raw(image.size() * sizeof(float));
  std::memcpy(raw.data(), image.data(), raw.size());
  json::Object predict_body;
  predict_body["design_id"] = design_id;
  predict_body["image_base64"] = util::base64_encode(raw);
  web::HttpRequest predict;
  predict.body = json::Value(std::move(predict_body)).dump();
  const web::HttpResponse served = runtime.handle_predict(predict);
  ASSERT_EQ(served.status, 200) << served.body;
  const auto result = json::parse(served.body);
  EXPECT_EQ(static_cast<std::size_t>(result.at("predicted").as_int()), expected.argmax());
  const auto& logits = result.at("logits").as_array();
  ASSERT_EQ(logits.size(), expected.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(logits[i].as_double()), expected[i]);
  }
  EXPECT_GE(result.at("batch_size").as_int(), 1);

  // Metrics reflect the traffic.
  const auto metrics = json::parse(runtime.handle_metrics(web::HttpRequest{}).body);
  EXPECT_EQ(metrics.at("deploy").at("total").as_int(), 2);
  EXPECT_EQ(metrics.at("deploy").at("cache_hits").as_int(), 1);
  EXPECT_EQ(metrics.at("predict").at("total").as_int(), 1);

  // Designs listing includes the deployed design.
  const auto designs = json::parse(runtime.handle_designs(web::HttpRequest{}).body);
  ASSERT_EQ(designs.at("designs").as_array().size(), 1u);
  EXPECT_EQ(designs.at("designs").as_array()[0].at("design_id").as_string(), design_id);
  EXPECT_EQ(designs.at("designs").as_array()[0].at("served").as_int(), 1);
}

std::string error_code(const web::HttpResponse& response) {
  return json::parse(response.body).at("error").at("code").as_string();
}

TEST(ServeApi, PredictErrorsUseTheEnvelope) {
  ServingRuntime runtime;

  web::HttpRequest bad_json;
  bad_json.body = "{ nope";
  const auto bad_json_response = runtime.handle_predict(bad_json);
  EXPECT_EQ(bad_json_response.status, 400);
  EXPECT_EQ(error_code(bad_json_response), "bad_json");

  web::HttpRequest no_design;
  no_design.body = R"({"design_id": "0123456789abcdef", "image": [0.0]})";
  const auto no_design_response = runtime.handle_predict(no_design);
  EXPECT_EQ(no_design_response.status, 404);
  EXPECT_EQ(error_code(no_design_response), "unknown_design");

  const auto deployed =
      json::parse(runtime.handle_deploy([]{ web::HttpRequest r; r.body = deploy_body("err_net"); return r; }()).body);
  const std::string design_id = deployed.at("design_id").as_string();

  // An "image" array of the wrong length is a shape mismatch, not a crash.
  web::HttpRequest wrong_size;
  wrong_size.body = util::format(R"({"design_id": "%s", "image": [0.5, 0.5]})",
                                 design_id.c_str());
  const auto wrong_size_response = runtime.handle_predict(wrong_size);
  EXPECT_EQ(wrong_size_response.status, 400);
  EXPECT_EQ(error_code(wrong_size_response), "shape_mismatch");

  // image_base64 whose decoded byte length disagrees with the input shape:
  // 400 with a message naming both sizes, never a misread or a 5xx.
  web::HttpRequest short_b64;
  short_b64.body = util::format(R"({"design_id": "%s", "image_base64": "%s"})",
                                design_id.c_str(),
                                util::base64_encode(std::vector<std::uint8_t>(8, 0)).c_str());
  const auto short_b64_response = runtime.handle_predict(short_b64);
  EXPECT_EQ(short_b64_response.status, 400);
  EXPECT_EQ(error_code(short_b64_response), "shape_mismatch");
  const auto short_message =
      json::parse(short_b64_response.body).at("error").at("message").as_string();
  EXPECT_NE(short_message.find("8 bytes"), std::string::npos) << short_message;

  web::HttpRequest bad_b64;
  bad_b64.body = util::format(R"({"design_id": "%s", "image_base64": "!!!"})",
                              design_id.c_str());
  const auto bad_b64_response = runtime.handle_predict(bad_b64);
  EXPECT_EQ(bad_b64_response.status, 400);
  EXPECT_EQ(error_code(bad_b64_response), "bad_request");

  // Non-numeric values inside "image" are a client error too (this used to
  // escape as a json::JsonError and answer 503).
  web::HttpRequest not_numbers;
  not_numbers.body = util::format(
      R"({"design_id": "%s", "image": ["a", "b"]})", design_id.c_str());
  const auto not_numbers_response = runtime.handle_predict(not_numbers);
  EXPECT_EQ(not_numbers_response.status, 400);

  EXPECT_GE(runtime.metrics().predict_errors.value(), 3u);
}

TEST(ServeApi, DeployRejectsUnknownPrecision) {
  ServingRuntime runtime;
  json::Value doc = json::parse(deploy_body("bad_precision"));
  doc.as_object()["precision"] = "int4";
  web::HttpRequest request;
  request.body = doc.dump();
  const auto response = runtime.handle_deploy(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(error_code(response), "bad_request");
  const std::string message =
      json::parse(response.body).at("error").at("message").as_string();
  EXPECT_NE(message.find("float32"), std::string::npos) << message;
  EXPECT_NE(message.find("int16"), std::string::npos) << message;
  EXPECT_NE(message.find("int8"), std::string::npos) << message;

  // Non-string precision is rejected the same way.
  doc.as_object()["precision"] = 8;
  request.body = doc.dump();
  EXPECT_EQ(runtime.handle_deploy(request).status, 400);
}

TEST(ServeApi, QuantizedDeployServesInt8MatchingTheFixedModel) {
  ServingRuntime runtime;

  json::Value doc = json::parse(deploy_body("quant_api"));
  doc.as_object()["precision"] = "int8";
  web::HttpRequest deploy;
  deploy.body = doc.dump();
  const web::HttpResponse deployed = runtime.handle_deploy(deploy);
  ASSERT_EQ(deployed.status, 200) << deployed.body;
  const auto deploy_doc = json::parse(deployed.body);
  const std::string design_id = deploy_doc.at("design_id").as_string();
  EXPECT_EQ(deploy_doc.at("serve_precision").as_string(), "int8");

  // Deploy-time validation against the fixed-point model is surfaced.
  const auto& quant = deploy_doc.at("quantization");
  EXPECT_TRUE(quant.at("validated").as_bool());
  EXPECT_GE(quant.at("probes").as_int(), 1);
  EXPECT_GE(quant.at("max_abs_error").as_double(), 0.0);
  EXPECT_GE(quant.at("top1_agreement").as_double(), 0.0);
  EXPECT_LE(quant.at("top1_agreement").as_double(), 1.0);
  EXPECT_TRUE(quant.at("matches_fixed_model").as_bool());

  // Served predictions equal nn::forward_fixed bit-for-bit.
  const auto design = runtime.registry().find(design_id);
  ASSERT_NE(design, nullptr);
  nn::Network reference = design->descriptor().build_network();
  nn::deserialize_weights(reference, design->weights);
  const tensor::Tensor image = test_image(11, reference.input_shape());
  const nn::FixedPointFormat format =
      nn::serve_precision_format(nn::ServePrecision::kInt8);
  const auto fixed = nn::forward_fixed(reference, image, format);

  std::vector<std::uint8_t> raw(image.size() * sizeof(float));
  std::memcpy(raw.data(), image.data(), raw.size());
  json::Object predict_body;
  predict_body["design_id"] = design_id;
  predict_body["image_base64"] = util::base64_encode(raw);
  web::HttpRequest predict;
  predict.body = json::Value(std::move(predict_body)).dump();
  const web::HttpResponse served = runtime.handle_predict(predict);
  ASSERT_EQ(served.status, 200) << served.body;
  const auto result = json::parse(served.body);
  EXPECT_EQ(result.at("precision").as_string(), "int8");
  EXPECT_EQ(static_cast<std::size_t>(result.at("predicted").as_int()), fixed.predicted);
  const auto& logits = result.at("logits").as_array();
  ASSERT_EQ(logits.size(), fixed.scores.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(logits[i].as_double()), fixed.scores[i]);
  }

  // Per-precision dispatch counters show the int8 traffic.
  const auto metrics = json::parse(runtime.handle_metrics(web::HttpRequest{}).body);
  const auto& int8_metrics = metrics.at("precisions").at("int8");
  EXPECT_GE(int8_metrics.at("dispatched").as_int(), 1);
  EXPECT_GE(int8_metrics.at("images").as_int(), 1);
  EXPECT_EQ(metrics.at("precisions").at("float32").at("images").as_int(), 0);

  // The designs listing carries the precision and the validation report.
  const auto designs = json::parse(runtime.handle_designs(web::HttpRequest{}).body);
  ASSERT_EQ(designs.at("designs").as_array().size(), 1u);
  const auto& listed = designs.at("designs").as_array()[0];
  EXPECT_EQ(listed.at("serve_precision").as_string(), "int8");
  EXPECT_TRUE(listed.at("quantization").at("validated").as_bool());
}

TEST(Registry, PrecisionIsPartOfTheContentAddress) {
  DesignRegistry registry(8);
  const core::NetworkDescriptor descriptor = small_descriptor("quant_key");

  const auto as_float = registry.deploy_random(descriptor, 1);
  const auto as_int8 =
      registry.deploy_random(descriptor, 1, nn::ServePrecision::kInt8);
  const auto as_int16 =
      registry.deploy_random(descriptor, 1, nn::ServePrecision::kInt16);
  // Same descriptor + weights at different precisions are distinct designs.
  EXPECT_FALSE(as_int8.cache_hit);
  EXPECT_FALSE(as_int16.cache_hit);
  EXPECT_NE(as_int8.design->id, as_float.design->id);
  EXPECT_NE(as_int16.design->id, as_float.design->id);
  EXPECT_NE(as_int16.design->id, as_int8.design->id);
  EXPECT_EQ(as_float.design->precision, nn::ServePrecision::kFloat32);
  EXPECT_EQ(as_int8.design->precision, nn::ServePrecision::kInt8);

  // Redeploying at the same precision is a cache hit on the same instance.
  const auto again =
      registry.deploy_random(descriptor, 1, nn::ServePrecision::kInt8);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.design.get(), as_int8.design.get());
}

TEST(ServeApi, DeployRejectsUnsupportedSchemaVersion) {
  ServingRuntime runtime;
  json::Value doc = json::parse(deploy_body("versioned"));
  doc.as_object()["schema_version"] = 2;
  web::HttpRequest request;
  request.body = doc.dump();
  const auto response = runtime.handle_deploy(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(error_code(response), "bad_descriptor");
}

TEST(ServeApi, DeployRejectsMismatchedWeights) {
  ServingRuntime runtime;
  // Weights serialized for a different architecture must be a 400.
  core::NetworkDescriptor other = small_descriptor("other");
  other.layers[1].linear.neurons = 3;
  nn::Network net = other.build_network();
  util::Rng rng(1);
  net.init_weights(rng);
  const auto blob = nn::serialize_weights(net);

  json::Value doc = json::parse(deploy_body("mismatch"));
  doc.as_object()["weights_base64"] = util::base64_encode(blob);
  web::HttpRequest request;
  request.body = doc.dump();
  EXPECT_EQ(runtime.handle_deploy(request).status, 400);
}

TEST(ServeApi, ShutdownAnswers503) {
  ServingRuntime runtime;
  runtime.shutdown();
  web::HttpRequest request;
  request.body = deploy_body("late");
  EXPECT_EQ(runtime.handle_deploy(request).status, 503);
  EXPECT_EQ(runtime.handle_predict(request).status, 503);
}

namespace {

/// Deploy `name` on `runtime` and return a ready-to-send predict request.
std::pair<std::string, web::HttpRequest> deploy_and_predict_request(
    ServingRuntime& runtime, const std::string& name) {
  web::HttpRequest deploy;
  deploy.body = deploy_body(name);
  const auto deployed = json::parse(runtime.handle_deploy(deploy).body);
  const std::string design_id = deployed.at("design_id").as_string();
  const auto design = runtime.registry().find(design_id);
  const tensor::Tensor image = test_image(1, design->net.input_shape());
  std::vector<std::uint8_t> raw(image.size() * sizeof(float));
  std::memcpy(raw.data(), image.data(), raw.size());
  json::Object body;
  body["design_id"] = design_id;
  body["image_base64"] = util::base64_encode(raw);
  web::HttpRequest predict;
  predict.body = json::Value(std::move(body)).dump();
  return {design_id, std::move(predict)};
}

}  // namespace

TEST(ServeApi, OverloadAnswers429WithRetryAfter) {
  ServingConfig config;
  config.batcher.max_queue_depth = 1;
  config.batcher.max_inflight_per_design = 1;
  config.batcher.max_batch = 64;
  config.batcher.max_wait_us = 60'000'000;
  // Single engine: the scenario parks the CPU workers and expects the queue
  // to back up into a 429. With the accelerator enabled the placer would
  // drain the overflow by spilling instead of shedding.
  config.backends.accelerator = false;
  ServingRuntime runtime(config);
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_429");
  const auto design = runtime.registry().find(design_id);

  auto gate = park_workers(runtime.executor());
  auto occupant = runtime.batcher().predict(design, test_image(0, design->net.input_shape()));
  const auto response = runtime.handle_predict(predict);
  EXPECT_EQ(response.status, 429);
  EXPECT_EQ(error_code(response), "overloaded");
  ASSERT_EQ(response.headers.count("Retry-After"), 1u);
  EXPECT_GE(std::stoi(response.headers.at("Retry-After")), 1);
  gate->set_value();
  EXPECT_NO_THROW(occupant.get());

  // Recovered: the same request now answers 200.
  EXPECT_EQ(runtime.handle_predict(predict).status, 200);
  runtime.shutdown();
}

TEST(ServeApi, CpuSaturationSpillsToAcceleratorInsteadOfShedding) {
  // The heterogeneous default: with every CPU worker busy, overflow batches
  // are placed on the simulated fabric (a real second drain path on its own
  // driver thread) instead of queueing toward a 429.
  ServingConfig config;
  config.batcher.max_batch = 1;  // flush every request as its own batch
  config.batcher.max_wait_us = 60'000'000;
  config.backends.accel_sleep_for_model = false;  // virtual clock only
  ServingRuntime runtime(config);
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_spill");
  const auto design = runtime.registry().find(design_id);

  auto gate = park_workers(runtime.executor());
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        runtime.batcher().predict(design, test_image(i, design->net.input_shape())));
  }
  gate->set_value();
  std::size_t on_accelerator = 0;
  for (auto& future : futures) {
    const Prediction prediction = future.get();  // nobody shed, nobody failed
    if (prediction.backend == BackendId::kAccelerator) ++on_accelerator;
  }
  EXPECT_GT(on_accelerator, 0u);
  EXPECT_EQ(runtime.metrics().shed.value(), 0u);
  EXPECT_GT(runtime.metrics().spilled.value(), 0u);
  EXPECT_GT(runtime.metrics().backend[backend_index(BackendId::kAccelerator)]
                .dispatched.value(),
            0u);

  // The metrics route exposes the per-backend dispatch counts and spill rate.
  const auto metrics = json::parse(runtime.handle_metrics(web::HttpRequest{}).body);
  EXPECT_GT(metrics.at("backends").at("accelerator").at("dispatched").as_int(), 0);
  EXPECT_GT(metrics.at("backends").at("spill_rate").as_double(), 0.0);
  runtime.shutdown();
}

TEST(ServeApi, DeadlineHeaderAnswers504WhenBudgetExpires) {
  ServingRuntime runtime;
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_504");

  // 30 ms of injected executor latency guarantees the 10 ms budget expires
  // between enqueue and dispatch, deterministically.
  runtime.faults().arm("executor.batch",
                       {FaultKind::kLatency, /*rate=*/1.0, /*count=*/1, /*latency_us=*/30'000});
  predict.headers["x-deadline-ms"] = "10";
  const auto response = runtime.handle_predict(predict);
  EXPECT_EQ(response.status, 504);
  EXPECT_EQ(error_code(response), "deadline_exceeded");
  EXPECT_EQ(runtime.metrics().expired.value(), 1u);

  // Without the fault the same deadline is generous.
  EXPECT_EQ(runtime.handle_predict(predict).status, 200);
  runtime.shutdown();
}

TEST(ServeApi, MalformedDeadlineHeaderIs400) {
  ServingRuntime runtime;
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_deadline");
  for (const char* bad : {"nope", "-5", "0", "12x", ""}) {
    predict.headers["x-deadline-ms"] = bad;
    const auto response = runtime.handle_predict(predict);
    EXPECT_EQ(response.status, 400) << "header value: '" << bad << "'";
  }
  runtime.shutdown();
}

TEST(ServeApi, ReadyzReportsReadySaturatedAndDraining) {
  ServingConfig config;
  config.batcher.max_queue_depth = 1;
  config.batcher.max_inflight_per_design = 1;
  config.batcher.max_batch = 64;
  config.batcher.max_wait_us = 60'000'000;
  // Single engine: "saturated" requires the parked request to stay queued.
  // With the accelerator enabled the placer would spill it and readyz would
  // report ready again before the assertion runs.
  config.backends.accelerator = false;
  ServingRuntime runtime(config);
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_ready");
  const auto design = runtime.registry().find(design_id);

  const auto ready = runtime.handle_readyz(web::HttpRequest{});
  EXPECT_EQ(ready.status, 200);
  const auto ready_doc = json::parse(ready.body);
  EXPECT_EQ(ready_doc.at("status").as_string(), "ready");
  EXPECT_EQ(ready_doc.at("queue_capacity").as_int(), 1);
  EXPECT_EQ(ready_doc.at("breakers").at(design_id).at("state").as_string(), "closed");

  auto gate = park_workers(runtime.executor());
  auto occupant = runtime.batcher().predict(design, test_image(0, design->net.input_shape()));
  const auto saturated = runtime.handle_readyz(web::HttpRequest{});
  EXPECT_EQ(saturated.status, 503);
  EXPECT_EQ(json::parse(saturated.body).at("status").as_string(), "saturated");
  EXPECT_EQ(json::parse(saturated.body).at("queue_depth").as_int(), 1);
  gate->set_value();
  occupant.get();

  runtime.shutdown();
  const auto draining = runtime.handle_readyz(web::HttpRequest{});
  EXPECT_EQ(draining.status, 503);
  EXPECT_EQ(json::parse(draining.body).at("status").as_string(), "draining");
}

TEST(ServeApi, ShutdownVersusPredictHammer) {
  // Predicts racing shutdown() must each resolve to exactly 200 or the
  // uniform 503 "shutdown" envelope — never a hang, a 500, or a mislabeled
  // internal error from the executor tearing down underneath the batcher.
  ServingConfig config;
  config.batcher.max_wait_us = 200;
  ServingRuntime runtime(config);
  auto [design_id, predict] = deploy_and_predict_request(runtime, "api_race");

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto response = runtime.handle_predict(predict);
        if (response.status == 200) continue;
        if (response.status == 503 && error_code(response) == "shutdown") continue;
        bad.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.shutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0u);
}

// ------------------------------------------------- full HTTP server serving

TEST(ServeHttp, EndToEndConcurrentClients) {
  ServingConfig config;
  config.batcher.max_wait_us = 500;
  ServingRuntime runtime(config);
  web::HttpServer server;
  web::install_api(server);
  install_serve_api(server, runtime);
  const int port = server.start(0);

  const auto deployed =
      web::http_request("127.0.0.1", port, "POST", "/api/v1/deploy", deploy_body("e2e"));
  ASSERT_TRUE(deployed.has_value());
  ASSERT_EQ(deployed->status, 200) << deployed->body;
  EXPECT_EQ(deployed->headers.count("deprecation"), 0u);

  // The pre-versioning route is retired: 410 tombstone pointing at v1, no
  // deploy executed.
  const auto legacy =
      web::http_request("127.0.0.1", port, "POST", "/api/deploy", deploy_body("e2e"));
  ASSERT_TRUE(legacy.has_value());
  ASSERT_EQ(legacy->status, 410) << legacy->body;
  EXPECT_EQ(json::parse(legacy->body).at("error").at("code").as_string(), "gone");
  ASSERT_EQ(legacy->headers.count("link"), 1u);
  EXPECT_NE(legacy->headers.at("link").find("/api/v1/deploy"), std::string::npos);
  const std::string design_id = json::parse(deployed->body).at("design_id").as_string();

  const auto design = runtime.registry().find(design_id);
  ASSERT_NE(design, nullptr);
  const std::size_t pixels = design->net.input_shape().elements();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 3; ++i) {
        const tensor::Tensor image =
            test_image(static_cast<std::uint64_t>(c * 3 + i), design->net.input_shape());
        std::vector<std::uint8_t> raw(pixels * sizeof(float));
        std::memcpy(raw.data(), image.data(), raw.size());
        json::Object body;
        body["design_id"] = design_id;
        body["image_base64"] = util::base64_encode(raw);
        const auto response = web::http_request("127.0.0.1", port, "POST", "/api/v1/predict",
                                                json::Value(std::move(body)).dump());
        if (!response || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(runtime.metrics().predictions.value(), 12u);
  // Only the v1 deploy reached the registry; the 410 alias never ran it.
  EXPECT_EQ(runtime.metrics().deploys.value(), 1u);

  const auto metrics = web::http_request("127.0.0.1", port, "GET", "/api/v1/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_EQ(json::parse(metrics->body).at("predict").at("total").as_int(), 12);
  server.stop();
  runtime.shutdown();
}

// --------------------------------------------------- HTTP server hardening

TEST(HttpHardening, OversizedBodyAnswers413) {
  web::ServerConfig config;
  config.max_body_bytes = 1024;
  web::HttpServer server(config);
  web::install_api(server);
  const int port = server.start(0);

  const std::string big(4096, 'x');
  const auto response = web::http_request("127.0.0.1", port, "POST", "/api/v1/generate", big);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 413);

  // Server still serves normal traffic afterwards.
  const auto health = web::http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpHardening, MalformedRequestLineAnswers400) {
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);

  // Raw socket: a request line without an HTTP version token.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char* garbage = "TOTAL GARBAGE\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, std::strlen(garbage), MSG_NOSIGNAL), 0);
  std::string reply;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) reply.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(reply.find("400"), std::string::npos) << reply;
  server.stop();
}

TEST(HttpHardening, StalledClientIsTimedOut) {
  web::ServerConfig config;
  config.read_timeout_ms = 150;
  web::HttpServer server(config);
  web::install_api(server);
  const int port = server.start(0);

  // Connect and send nothing: the read timeout must answer 408 (rather than
  // pinning a handler thread forever).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string reply;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) reply.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(reply.find("408"), std::string::npos) << reply;

  const auto health = web::http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpHardening, SlowReaderCannotPinTheHandlerThread) {
  // One handler thread and a short send timeout: a client that requests a
  // response far larger than the socket buffers and then never reads would
  // block write_response forever without SO_SNDTIMEO. The timeout must free
  // the (only) handler so the next request still gets served.
  web::ServerConfig config;
  config.handler_threads = 1;
  config.write_timeout_ms = 200;
  web::HttpServer server(config);
  web::install_api(server);
  server.route("GET", "/big", [](const web::HttpRequest&) {
    return web::HttpResponse{200, "application/octet-stream", std::string(16u << 20, 'x'), {}};
  });
  const int port = server.start(0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;  // shrink the client's receive window
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char* request = "GET /big HTTP/1.1\r\nHost: test\r\n\r\n";
  ASSERT_GT(::send(fd, request, std::strlen(request), MSG_NOSIGNAL), 0);
  // Never read: the server's send must stall, time out, and abandon us.

  const auto started = std::chrono::steady_clock::now();
  const auto health = web::http_request("127.0.0.1", port, "GET", "/healthz");
  const auto waited = std::chrono::steady_clock::now() - started;
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 5000);
  ::close(fd);
  server.stop();
}

TEST(HttpHardening, ParallelHandlersServeConcurrently) {
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        const auto response = web::http_request("127.0.0.1", port, "GET", "/api/v1/boards");
        if (!response || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  server.stop();
}
