// Tests for the inference-serving runtime: registry LRU + hit/miss
// accounting, micro-batching flush behavior, deterministic predictions under
// concurrent clients, metrics consistency, and the hardened HTTP transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "json/json.hpp"
#include "serve/server.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "web/api.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::serve;
namespace json = cnn2fpga::json;

namespace {

core::NetworkDescriptor small_descriptor(const std::string& name) {
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

tensor::Tensor test_image(std::uint64_t seed, const nn::Shape& shape) {
  tensor::Tensor image{shape};
  util::Rng rng(seed);
  image.fill_uniform(rng, -1.0f, 1.0f);
  return image;
}

std::string deploy_body(const std::string& name, int seed = 7) {
  return util::format(
      R"({"name": "%s", "board": "zedboard", "optimize": true, "seed": %d,
          "input": {"channels": 1, "height": 8, "width": 8},
          "layers": [
            {"type": "conv", "feature_maps_out": 2, "kernel": 3,
             "pool": {"type": "max", "kernel": 2, "step": 2}},
            {"type": "linear", "neurons": 4}
          ]})",
      name.c_str(), seed);
}

/// Occupy every worker of `executor` until the returned promise is fulfilled.
/// With all workers parked, submitted batches queue up instead of executing,
/// which lets tests control exactly when execution happens (the replacement
/// for grabbing the old per-design execution lock, which no longer exists).
std::shared_ptr<std::promise<void>> park_workers(Executor& executor) {
  auto gate = std::make_shared<std::promise<void>>();
  std::shared_future<void> open = gate->get_future().share();
  for (std::size_t i = 0; i < executor.thread_count(); ++i) {
    executor.submit([open] { open.wait(); });
  }
  return gate;
}

}  // namespace

// ------------------------------------------------------------------ registry

TEST(Registry, DeployMissThenHit) {
  DesignRegistry registry(4);
  const auto first = registry.deploy_random(small_descriptor("net_a"), 1);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_NE(first.design, nullptr);
  EXPECT_EQ(first.design->id.size(), 16u);

  const auto second = registry.deploy_random(small_descriptor("net_a"), 1);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.design.get(), first.design.get());  // same warm instance

  // Different seed => different weights => different content hash.
  const auto third = registry.deploy_random(small_descriptor("net_a"), 2);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_NE(third.design->id, first.design->id);

  const RegistryStats stats = registry.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
}

TEST(Registry, ExplicitWeightsContentAddressing) {
  DesignRegistry registry(4);
  const core::NetworkDescriptor descriptor = small_descriptor("net_w");
  nn::Network net = descriptor.build_network();
  util::Rng rng(5);
  net.init_weights(rng);
  const auto blob = nn::serialize_weights(net);

  const auto first = registry.deploy(descriptor, blob);
  EXPECT_FALSE(first.cache_hit);
  // Seed 5 expands to the identical blob: content-addressing collapses the
  // random-weights deploy onto the explicit-weights one.
  const auto second = registry.deploy_random(descriptor, 5);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.design.get(), first.design.get());
}

TEST(Registry, LruEvictionDropsLeastRecentlyUsed) {
  DesignRegistry registry(2);
  const auto a = registry.deploy_random(small_descriptor("net_a"), 1);
  const auto b = registry.deploy_random(small_descriptor("net_b"), 1);
  EXPECT_EQ(registry.size(), 2u);

  // Touch A so B becomes the LRU victim.
  EXPECT_TRUE(registry.deploy_random(small_descriptor("net_a"), 1).cache_hit);
  const auto c = registry.deploy_random(small_descriptor("net_c"), 1);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.find(a.design->id), nullptr);
  EXPECT_EQ(registry.find(b.design->id), nullptr);  // evicted
  EXPECT_NE(registry.find(c.design->id), nullptr);
  EXPECT_EQ(registry.stats().evictions, 1u);

  // Redeploying the evicted design is a miss again (it was regenerated).
  EXPECT_FALSE(registry.deploy_random(small_descriptor("net_b"), 1).cache_hit);
}

TEST(Registry, ListIsMostRecentlyUsedFirst) {
  DesignRegistry registry(4);
  registry.deploy_random(small_descriptor("net_a"), 1);
  const auto b = registry.deploy_random(small_descriptor("net_b"), 1);
  registry.deploy_random(small_descriptor("net_a"), 1);  // touch A
  const auto designs = registry.list();
  ASSERT_EQ(designs.size(), 2u);
  EXPECT_EQ(designs[0]->descriptor().name, "net_a");
  EXPECT_EQ(designs[1]->descriptor().name, "net_b");
  EXPECT_EQ(designs[1].get(), b.design.get());
}

// ------------------------------------------------------------------- batcher

TEST(Batcher, FlushesImmediatelyWhenDesignIdle) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  // Huge batch and deadline: only the idle-design trigger can flush.
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto future = batcher.predict(design, test_image(0, design->net.input_shape()));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(future.get().batch_size, 1u);  // no batching latency when unloaded
  batcher.shutdown();
}

TEST(Batcher, FlushesWhenMaxBatchReached) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  // Deadline far away and a single inference slot: only idle-flush and the
  // max_batch trigger can flush.
  Batcher batcher(executor,
                  {/*max_batch=*/4, /*max_wait_us=*/60'000'000, /*max_inflight=*/1}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // Park the workers: the first request flushes immediately (free slot) and
  // its batch queues; the next 4 coalesce until max_batch.
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  std::vector<std::future<Prediction>> coalesced;
  for (int i = 1; i <= 4; ++i) {
    coalesced.push_back(batcher.predict(design, test_image(i, design->net.input_shape())));
  }
  EXPECT_EQ(batcher.pending(), 0u);  // 4th request hit max_batch and flushed
  gate->set_value();

  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().batch_size, 1u);
  for (auto& future : coalesced) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future.get().batch_size, 4u);
  }
  EXPECT_EQ(metrics.batches.value(), 2u);
  EXPECT_EQ(metrics.predictions.value(), 5u);
  batcher.shutdown();
}

TEST(Batcher, ModeledAcceleratorTimeAmortizesAcrossBatch) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor,
                  {/*max_batch=*/4, /*max_wait_us=*/60'000'000, /*max_inflight=*/1}, &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // A lone image pays a blocking DMA round trip; a coalesced batch of 4 is one
  // scatter-gather invocation whose cost splits across the batch.
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  std::vector<std::future<Prediction>> coalesced;
  for (int i = 1; i <= 4; ++i) {
    coalesced.push_back(batcher.predict(design, test_image(i, design->net.input_shape())));
  }
  gate->set_value();

  const auto single_us = static_cast<std::uint64_t>(design->invocation_seconds(1) * 1e6);
  const auto share_us =
      static_cast<std::uint64_t>(design->invocation_seconds(4) * 1e6 / 4.0);
  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().accel_us, single_us);
  for (auto& future : coalesced) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future.get().accel_us, share_us);
  }
  EXPECT_LT(share_us, single_us);  // batching must win on the modeled hardware
  EXPECT_EQ(design->invocation_seconds(0), 0.0);
  batcher.shutdown();
}

TEST(Batcher, FlushesPartialBatchOnDeadline) {
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/2000, /*max_inflight=*/1},
                  &metrics);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  // Park the workers and fill the design's one slot so the two coalescing
  // requests can only leave the lane via the 2 ms deadline (they never reach
  // max_batch = 64).
  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  auto second = batcher.predict(design, test_image(1, design->net.input_shape()));
  auto third = batcher.predict(design, test_image(2, design->net.input_shape()));
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (batcher.pending() != 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(batcher.pending(), 0u);  // deadline thread flushed the partial lane
  gate->set_value();

  ASSERT_EQ(first.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  EXPECT_EQ(first.get().batch_size, 1u);
  for (auto* future : {&second, &third}) {
    ASSERT_EQ(future->wait_for(std::chrono::seconds(30)), std::future_status::ready);
    const Prediction prediction = future->get();
    EXPECT_EQ(prediction.batch_size, 2u);
    EXPECT_LT(prediction.predicted, 4u);
  }
  EXPECT_EQ(metrics.batches.value(), 2u);
  batcher.shutdown();
}

TEST(Batcher, ShutdownDrainsPendingRequests) {
  DesignRegistry registry(4);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto future = batcher.predict(design, test_image(0, design->net.input_shape()));
  batcher.shutdown();  // must flush the half-full lane, not abandon it
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(future.get().batch_size, 1u);
  EXPECT_THROW(batcher.predict(design, test_image(0, design->net.input_shape())),
               std::runtime_error);
}

TEST(Batcher, RejectsWrongInputShape) {
  DesignRegistry registry(4);
  Executor executor(1);
  Batcher batcher(executor, {4, 1000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;
  EXPECT_THROW(batcher.predict(design, tensor::Tensor{nn::Shape{1, 4, 4}}),
               std::invalid_argument);
}

TEST(Batcher, DispatchesParallelBatchesForOneDesign) {
  // With the per-design execution lock gone, one design may have as many
  // batches in flight as the executor has workers. Park both workers: two
  // back-to-back requests must BOTH dispatch immediately (two in-flight
  // batches of one), instead of the second coalescing behind the first.
  ServeMetrics metrics;
  DesignRegistry registry(4, &metrics);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/64, /*max_wait_us=*/60'000'000}, &metrics);
  EXPECT_EQ(batcher.inflight_limit(), 2u);
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;

  auto gate = park_workers(executor);
  auto first = batcher.predict(design, test_image(0, design->net.input_shape()));
  auto second = batcher.predict(design, test_image(1, design->net.input_shape()));
  EXPECT_EQ(batcher.pending(), 0u);  // both flushed despite neither completing
  // A third request finds both slots occupied and coalesces.
  auto third = batcher.predict(design, test_image(2, design->net.input_shape()));
  EXPECT_EQ(batcher.pending(), 1u);
  gate->set_value();

  for (auto* future : {&first, &second, &third}) {
    ASSERT_EQ(future->wait_for(std::chrono::seconds(30)), std::future_status::ready);
    EXPECT_EQ(future->get().batch_size, 1u);
  }
  EXPECT_EQ(metrics.batches.value(), 3u);
  batcher.shutdown();
}

TEST(Batcher, ContextPoolGrowsOnlyToPeakParallelism) {
  // Sequential traffic through one design must keep reusing a single leased
  // context rather than materializing one per request.
  DesignRegistry registry(4);
  Executor executor(2);
  Batcher batcher(executor, {/*max_batch=*/8, /*max_wait_us=*/1000});
  const auto design = registry.deploy_random(small_descriptor("net_a"), 1).design;
  for (int i = 0; i < 6; ++i) {
    batcher.predict(design, test_image(i, design->net.input_shape())).get();
  }
  EXPECT_LE(design->contexts.created(), 2u);
  batcher.shutdown();
}

// ------------------------------------------- concurrent client determinism

TEST(Serving, ConcurrentPredictionsMatchSequentialInference) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 12;

  ServingConfig config;
  config.worker_threads = 4;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  ServingRuntime runtime(config);

  const core::NetworkDescriptor descriptor = small_descriptor("net_det");
  const auto design = runtime.registry().deploy_random(descriptor, 3).design;

  // Reference: the same weights run sequentially through a private network.
  nn::Network reference = descriptor.build_network();
  nn::deserialize_weights(reference, design->weights);
  std::vector<tensor::Tensor> images;
  std::vector<std::size_t> expected_class;
  std::vector<tensor::Tensor> expected_scores;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    images.push_back(test_image(i, reference.input_shape()));
    tensor::Tensor scores = reference.forward(images.back(), /*train=*/false);
    expected_class.push_back(scores.argmax());
    expected_scores.push_back(std::move(scores));
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t index = c * kPerClient + i;
        const Prediction prediction =
            runtime.batcher().predict(design, images[index]).get();
        if (prediction.predicted != expected_class[index]) mismatches.fetch_add(1);
        const auto& scores = expected_scores[index];
        for (std::size_t k = 0; k < prediction.logits.size(); ++k) {
          if (prediction.logits[k] != scores[k]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // Metrics must account for exactly the traffic sent.
  const ServeMetrics& metrics = runtime.metrics();
  EXPECT_EQ(metrics.predictions.value(), kClients * kPerClient);
  EXPECT_EQ(metrics.predict_errors.value(), 0u);
  EXPECT_GE(metrics.batches.value(), (kClients * kPerClient + 7) / 8);
  EXPECT_EQ(metrics.batch_size.sum(), kClients * kPerClient);
  EXPECT_EQ(metrics.queue_us.count(), kClients * kPerClient);
  EXPECT_EQ(design->served.load(), kClients * kPerClient);
  runtime.shutdown();
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, HistogramPercentilesAndCounters) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.max(), 100u);
  // Log2 buckets: percentiles are upper bounds of the containing bucket.
  EXPECT_LE(h.percentile(0.5), 63u);
  EXPECT_GE(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 100u);  // clamped to the observed max
  const auto snapshot = h.to_json();
  EXPECT_EQ(snapshot.at("count").as_int(), 100);
  EXPECT_EQ(snapshot.at("max").as_int(), 100);
}

TEST(Metrics, ServeMetricsJsonShape) {
  ServeMetrics metrics;
  metrics.deploys.add(4);
  metrics.deploy_cache_hits.add(3);
  metrics.predictions.add(10);
  metrics.batches.add(2);
  metrics.batch_size.record(5);
  metrics.batch_size.record(5);
  const auto doc = json::parse(metrics.to_json_text());
  EXPECT_EQ(doc.at("deploy").at("total").as_int(), 4);
  EXPECT_EQ(doc.at("deploy").at("cache_hits").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("deploy").at("cache_hit_rate").as_double(), 0.75);
  EXPECT_EQ(doc.at("predict").at("total").as_int(), 10);
  EXPECT_EQ(doc.at("predict").at("batch_size").at("count").as_int(), 2);
}

// ------------------------------------------------------- HTTP API handlers

TEST(ServeApi, DeployPredictRoundTripMatchesDirectInference) {
  ServingRuntime runtime;

  web::HttpRequest deploy;
  deploy.body = deploy_body("api_serve");
  const web::HttpResponse deployed = runtime.handle_deploy(deploy);
  ASSERT_EQ(deployed.status, 200) << deployed.body;
  const auto deploy_doc = json::parse(deployed.body);
  const std::string design_id = deploy_doc.at("design_id").as_string();
  EXPECT_FALSE(deploy_doc.at("cache_hit").as_bool());
  EXPECT_TRUE(deploy_doc.at("fits").as_bool());

  // Second deploy of the same body: cache hit, same id.
  const auto redeploy_doc = json::parse(runtime.handle_deploy(deploy).body);
  EXPECT_TRUE(redeploy_doc.at("cache_hit").as_bool());
  EXPECT_EQ(redeploy_doc.at("design_id").as_string(), design_id);

  // Direct reference inference with the deployed weights.
  const auto design = runtime.registry().find(design_id);
  ASSERT_NE(design, nullptr);
  nn::Network reference = design->descriptor().build_network();
  nn::deserialize_weights(reference, design->weights);
  const tensor::Tensor image = test_image(42, reference.input_shape());
  const tensor::Tensor expected = reference.forward(image, /*train=*/false);

  // Served prediction via the JSON API (base64 float32 CHW payload).
  std::vector<std::uint8_t> raw(image.size() * sizeof(float));
  std::memcpy(raw.data(), image.data(), raw.size());
  json::Object predict_body;
  predict_body["design_id"] = design_id;
  predict_body["image_base64"] = util::base64_encode(raw);
  web::HttpRequest predict;
  predict.body = json::Value(std::move(predict_body)).dump();
  const web::HttpResponse served = runtime.handle_predict(predict);
  ASSERT_EQ(served.status, 200) << served.body;
  const auto result = json::parse(served.body);
  EXPECT_EQ(static_cast<std::size_t>(result.at("predicted").as_int()), expected.argmax());
  const auto& logits = result.at("logits").as_array();
  ASSERT_EQ(logits.size(), expected.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(logits[i].as_double()), expected[i]);
  }
  EXPECT_GE(result.at("batch_size").as_int(), 1);

  // Metrics reflect the traffic.
  const auto metrics = json::parse(runtime.handle_metrics(web::HttpRequest{}).body);
  EXPECT_EQ(metrics.at("deploy").at("total").as_int(), 2);
  EXPECT_EQ(metrics.at("deploy").at("cache_hits").as_int(), 1);
  EXPECT_EQ(metrics.at("predict").at("total").as_int(), 1);

  // Designs listing includes the deployed design.
  const auto designs = json::parse(runtime.handle_designs(web::HttpRequest{}).body);
  ASSERT_EQ(designs.at("designs").as_array().size(), 1u);
  EXPECT_EQ(designs.at("designs").as_array()[0].at("design_id").as_string(), design_id);
  EXPECT_EQ(designs.at("designs").as_array()[0].at("served").as_int(), 1);
}

std::string error_code(const web::HttpResponse& response) {
  return json::parse(response.body).at("error").at("code").as_string();
}

TEST(ServeApi, PredictErrorsUseTheEnvelope) {
  ServingRuntime runtime;

  web::HttpRequest bad_json;
  bad_json.body = "{ nope";
  const auto bad_json_response = runtime.handle_predict(bad_json);
  EXPECT_EQ(bad_json_response.status, 400);
  EXPECT_EQ(error_code(bad_json_response), "bad_json");

  web::HttpRequest no_design;
  no_design.body = R"({"design_id": "0123456789abcdef", "image": [0.0]})";
  const auto no_design_response = runtime.handle_predict(no_design);
  EXPECT_EQ(no_design_response.status, 404);
  EXPECT_EQ(error_code(no_design_response), "unknown_design");

  const auto deployed =
      json::parse(runtime.handle_deploy([]{ web::HttpRequest r; r.body = deploy_body("err_net"); return r; }()).body);
  const std::string design_id = deployed.at("design_id").as_string();

  // An "image" array of the wrong length is a shape mismatch, not a crash.
  web::HttpRequest wrong_size;
  wrong_size.body = util::format(R"({"design_id": "%s", "image": [0.5, 0.5]})",
                                 design_id.c_str());
  const auto wrong_size_response = runtime.handle_predict(wrong_size);
  EXPECT_EQ(wrong_size_response.status, 400);
  EXPECT_EQ(error_code(wrong_size_response), "shape_mismatch");

  // image_base64 whose decoded byte length disagrees with the input shape:
  // 400 with a message naming both sizes, never a misread or a 5xx.
  web::HttpRequest short_b64;
  short_b64.body = util::format(R"({"design_id": "%s", "image_base64": "%s"})",
                                design_id.c_str(),
                                util::base64_encode(std::vector<std::uint8_t>(8, 0)).c_str());
  const auto short_b64_response = runtime.handle_predict(short_b64);
  EXPECT_EQ(short_b64_response.status, 400);
  EXPECT_EQ(error_code(short_b64_response), "shape_mismatch");
  const auto short_message =
      json::parse(short_b64_response.body).at("error").at("message").as_string();
  EXPECT_NE(short_message.find("8 bytes"), std::string::npos) << short_message;

  web::HttpRequest bad_b64;
  bad_b64.body = util::format(R"({"design_id": "%s", "image_base64": "!!!"})",
                              design_id.c_str());
  const auto bad_b64_response = runtime.handle_predict(bad_b64);
  EXPECT_EQ(bad_b64_response.status, 400);
  EXPECT_EQ(error_code(bad_b64_response), "bad_request");

  // Non-numeric values inside "image" are a client error too (this used to
  // escape as a json::JsonError and answer 503).
  web::HttpRequest not_numbers;
  not_numbers.body = util::format(
      R"({"design_id": "%s", "image": ["a", "b"]})", design_id.c_str());
  const auto not_numbers_response = runtime.handle_predict(not_numbers);
  EXPECT_EQ(not_numbers_response.status, 400);

  EXPECT_GE(runtime.metrics().predict_errors.value(), 3u);
}

TEST(ServeApi, DeployRejectsUnsupportedSchemaVersion) {
  ServingRuntime runtime;
  json::Value doc = json::parse(deploy_body("versioned"));
  doc.as_object()["schema_version"] = 2;
  web::HttpRequest request;
  request.body = doc.dump();
  const auto response = runtime.handle_deploy(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(error_code(response), "bad_descriptor");
}

TEST(ServeApi, DeployRejectsMismatchedWeights) {
  ServingRuntime runtime;
  // Weights serialized for a different architecture must be a 400.
  core::NetworkDescriptor other = small_descriptor("other");
  other.layers[1].linear.neurons = 3;
  nn::Network net = other.build_network();
  util::Rng rng(1);
  net.init_weights(rng);
  const auto blob = nn::serialize_weights(net);

  json::Value doc = json::parse(deploy_body("mismatch"));
  doc.as_object()["weights_base64"] = util::base64_encode(blob);
  web::HttpRequest request;
  request.body = doc.dump();
  EXPECT_EQ(runtime.handle_deploy(request).status, 400);
}

TEST(ServeApi, ShutdownAnswers503) {
  ServingRuntime runtime;
  runtime.shutdown();
  web::HttpRequest request;
  request.body = deploy_body("late");
  EXPECT_EQ(runtime.handle_deploy(request).status, 503);
  EXPECT_EQ(runtime.handle_predict(request).status, 503);
}

// ------------------------------------------------- full HTTP server serving

TEST(ServeHttp, EndToEndConcurrentClients) {
  ServingConfig config;
  config.batcher.max_wait_us = 500;
  ServingRuntime runtime(config);
  web::HttpServer server;
  web::install_api(server);
  install_serve_api(server, runtime);
  const int port = server.start(0);

  const auto deployed =
      web::http_request("127.0.0.1", port, "POST", "/api/v1/deploy", deploy_body("e2e"));
  ASSERT_TRUE(deployed.has_value());
  ASSERT_EQ(deployed->status, 200) << deployed->body;
  EXPECT_EQ(deployed->headers.count("deprecation"), 0u);

  // The pre-versioning route still answers (cache hit), flagged deprecated.
  const auto legacy =
      web::http_request("127.0.0.1", port, "POST", "/api/deploy", deploy_body("e2e"));
  ASSERT_TRUE(legacy.has_value());
  ASSERT_EQ(legacy->status, 200) << legacy->body;
  EXPECT_EQ(legacy->headers.count("deprecation"), 1u);
  const std::string design_id = json::parse(deployed->body).at("design_id").as_string();

  const auto design = runtime.registry().find(design_id);
  ASSERT_NE(design, nullptr);
  const std::size_t pixels = design->net.input_shape().elements();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 3; ++i) {
        const tensor::Tensor image =
            test_image(static_cast<std::uint64_t>(c * 3 + i), design->net.input_shape());
        std::vector<std::uint8_t> raw(pixels * sizeof(float));
        std::memcpy(raw.data(), image.data(), raw.size());
        json::Object body;
        body["design_id"] = design_id;
        body["image_base64"] = util::base64_encode(raw);
        const auto response = web::http_request("127.0.0.1", port, "POST", "/api/v1/predict",
                                                json::Value(std::move(body)).dump());
        if (!response || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(runtime.metrics().predictions.value(), 12u);
  EXPECT_EQ(runtime.metrics().deploys.value(), 2u);

  const auto metrics = web::http_request("127.0.0.1", port, "GET", "/api/v1/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_EQ(json::parse(metrics->body).at("predict").at("total").as_int(), 12);
  server.stop();
  runtime.shutdown();
}

// --------------------------------------------------- HTTP server hardening

TEST(HttpHardening, OversizedBodyAnswers413) {
  web::ServerConfig config;
  config.max_body_bytes = 1024;
  web::HttpServer server(config);
  web::install_api(server);
  const int port = server.start(0);

  const std::string big(4096, 'x');
  const auto response = web::http_request("127.0.0.1", port, "POST", "/api/generate", big);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 413);

  // Server still serves normal traffic afterwards.
  const auto health = web::http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpHardening, MalformedRequestLineAnswers400) {
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);

  // Raw socket: a request line without an HTTP version token.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char* garbage = "TOTAL GARBAGE\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, std::strlen(garbage), MSG_NOSIGNAL), 0);
  std::string reply;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) reply.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(reply.find("400"), std::string::npos) << reply;
  server.stop();
}

TEST(HttpHardening, StalledClientIsTimedOut) {
  web::ServerConfig config;
  config.read_timeout_ms = 150;
  web::HttpServer server(config);
  web::install_api(server);
  const int port = server.start(0);

  // Connect and send nothing: the read timeout must answer 408 (rather than
  // pinning a handler thread forever).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string reply;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) reply.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(reply.find("408"), std::string::npos) << reply;

  const auto health = web::http_request("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  server.stop();
}

TEST(HttpHardening, ParallelHandlersServeConcurrently) {
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        const auto response = web::http_request("127.0.0.1", port, "GET", "/api/boards");
        if (!response || response->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  server.stop();
}
