// End-to-end integration tests: the full paper workflow on scaled-down
// workloads — train offline, generate the design, run it through the
// simulated block design, and check the qualitative claims of Table I.
#include <gtest/gtest.h>

#include "axi/block_design.hpp"
#include "core/framework.hpp"
#include "cpu/a9_model.hpp"
#include "data/synth_usps.hpp"
#include "nn/trainer.hpp"
#include "power/power_model.hpp"

using namespace cnn2fpga;
using core::Framework;
using core::LayerSpec;
using core::NetworkDescriptor;
using core::PoolSpec;

namespace {

NetworkDescriptor test1_descriptor(bool optimize) {
  NetworkDescriptor d;
  d.name = "usps_test1";
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = optimize;
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = PoolSpec{nn::PoolKind::kMax, 2, 2};
  LayerSpec lin;
  lin.type = LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  return d;
}

struct TrainedSetup {
  nn::Network net;
  std::vector<nn::Sample> test_set;
  float test_error;
};

TrainedSetup train_test1() {
  data::UspsConfig config;
  config.samples_per_class = 12;
  config.seed = 100;
  const auto train_set = data::generate_usps(config).samples;
  config.samples_per_class = 8;
  config.seed = 200;
  const auto test_set = data::generate_usps(config).samples;

  TrainedSetup setup{test1_descriptor(true).build_network(), test_set, 1.0f};
  util::Rng rng(300);
  setup.net.init_weights(rng);

  nn::TrainConfig train;
  train.epochs = 6;
  train.learning_rate = 0.005f;
  const auto result = nn::SgdTrainer(train).train(setup.net, train_set, test_set);
  setup.test_error = result.final_test_error;
  return setup;
}

}  // namespace

TEST(Integration, TrainedNetworkReachesUsableError) {
  const TrainedSetup setup = train_test1();
  // Paper Test 1 reports 3.9%; the synthetic stand-in should land well under
  // the 20% mark with this short training budget.
  EXPECT_LT(setup.test_error, 0.20f);
}

TEST(Integration, HardwareAndSoftwarePredictionsAgreeExactly) {
  // The paper's central accuracy claim: "both implementations produce the
  // same prediction error" — here checked prediction-by-prediction.
  TrainedSetup setup = train_test1();
  axi::BlockDesign bd(setup.net, hls::DirectiveSet::optimized(), hls::zedboard());

  std::size_t hw_wrong = 0, sw_wrong = 0;
  for (const nn::Sample& sample : setup.test_set) {
    const std::size_t sw = setup.net.predict(sample.image);
    const axi::ClassifyResult hw = bd.classify(sample.image);
    ASSERT_TRUE(hw.ok);
    EXPECT_EQ(hw.predicted, sw);
    if (sw != sample.label) ++sw_wrong;
    if (hw.predicted != sample.label) ++hw_wrong;
  }
  EXPECT_EQ(hw_wrong, sw_wrong);  // same predicted error, as in Table I
}

TEST(Integration, OptimizedHardwareBeatsSoftwareBaseline) {
  // Table I shape: the optimized design is several times faster than the A9.
  TrainedSetup setup = train_test1();
  axi::BlockDesign bd(setup.net, hls::DirectiveSet::optimized(), hls::zedboard());

  const double sw_seconds = cpu::batch_seconds(setup.net, 1000);
  const double hw_seconds =
      1000.0 * (bd.ip_core().report().latency_seconds() + axi::kBlockingDriverSeconds);
  const double speedup = sw_seconds / hw_seconds;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 15.0);
}

TEST(Integration, NaiveHardwareBarelyBeatsSoftware) {
  // Table I Test 1: 1.18x. Accept anything in 0.8x..2x — the point is that
  // the naive design is in the same league as the CPU.
  nn::Network net = test1_descriptor(false).build_network();
  util::Rng rng(301);
  net.init_weights(rng);
  axi::BlockDesign bd(net, hls::DirectiveSet::naive(), hls::zedboard());
  const double sw_seconds = cpu::batch_seconds(net, 1000);
  const double hw_seconds =
      1000.0 * (bd.ip_core().report().latency_seconds() + axi::kBlockingDriverSeconds);
  const double speedup = sw_seconds / hw_seconds;
  EXPECT_GT(speedup, 0.8);
  EXPECT_LT(speedup, 2.0);
}

TEST(Integration, EnergyCrossoverBetweenNaiveAndOptimized) {
  // Table I: naive hardware costs MORE energy than software (11.73 J vs
  // 7.26 J), optimized costs LESS (2.23 J) — the crossover the paper
  // highlights in Sec. V-A/B.
  nn::Network net = test1_descriptor(false).build_network();
  util::Rng rng(302);
  net.init_weights(rng);

  const double sw_seconds = cpu::batch_seconds(net, 1000);
  const double sw_joules = power::software_power_w() * sw_seconds;

  const hls::HlsReport naive = hls::estimate(net, hls::DirectiveSet::naive(), hls::zedboard());
  const double naive_joules =
      power::hardware_power_w(naive.usage) *
      (1000.0 * (naive.latency_seconds() + axi::kBlockingDriverSeconds));

  const hls::HlsReport opt = hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
  const double opt_joules =
      power::hardware_power_w(opt.usage) *
      (1000.0 * (opt.latency_seconds() + axi::kBlockingDriverSeconds));

  EXPECT_GT(naive_joules, sw_joules);
  EXPECT_LT(opt_joules, sw_joules);
}

TEST(Integration, FullWebToBlockDesignPath) {
  // JSON descriptor -> framework -> generated artifacts, then the equivalent
  // network executed through the simulated Fig. 5 fabric.
  const NetworkDescriptor d = test1_descriptor(true);
  const core::GeneratedDesign design = Framework::generate_with_random_weights(d, 9);
  EXPECT_TRUE(design.hls_report.fits());

  nn::Network net = d.build_network();
  util::Rng rng(9);
  net.init_weights(rng);

  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());
  data::UspsConfig config;
  config.samples_per_class = 2;
  for (const nn::Sample& sample : data::generate_usps(config).samples) {
    const axi::ClassifyResult hw = bd.classify(sample.image);
    ASSERT_TRUE(hw.ok);
    EXPECT_EQ(hw.predicted, net.predict(sample.image));
  }
}

TEST(Integration, RandomWeightsGiveChanceErrorButIdenticalHwSw) {
  // Paper Test 4 methodology: random weights, ~89-90% error, but identical
  // between implementations.
  nn::Network net = test1_descriptor(true).build_network();
  util::Rng rng(400);
  net.init_weights(rng);

  data::UspsConfig config;
  config.samples_per_class = 20;
  config.seed = 500;
  const auto samples = data::generate_usps(config).samples;

  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());
  std::size_t sw_wrong = 0, hw_wrong = 0;
  for (const nn::Sample& sample : samples) {
    if (net.predict(sample.image) != sample.label) ++sw_wrong;
    const auto hw = bd.classify(sample.image);
    if (hw.predicted != sample.label) ++hw_wrong;
  }
  EXPECT_EQ(sw_wrong, hw_wrong);
  EXPECT_GT(static_cast<double>(sw_wrong) / samples.size(), 0.5);
}
