// Tests for the Fig. 5 block-design simulation: streams, DMA, interconnect,
// IP core and the assembled design.
#include <gtest/gtest.h>

#include "axi/block_design.hpp"
#include "data/synth_usps.hpp"

using namespace cnn2fpga::axi;
using cnn2fpga::nn::Network;
using cnn2fpga::nn::Shape;
using cnn2fpga::nn::Tensor;

// ---------------------------------------------------------------- stream

TEST(Stream, FloatBitsRoundTrip) {
  for (float v : {0.0f, -1.5f, 3.14159f, 1e-30f, -1e30f}) {
    EXPECT_EQ(bits_to_float(float_to_bits(v)), v);
  }
}

TEST(Stream, FifoOrderAndLastFlag) {
  AxiStreamChannel ch(4);
  ch.push_float(1.0f, false);
  ch.push_float(2.0f, true);
  const auto a = ch.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(bits_to_float(a->data), 1.0f);
  EXPECT_FALSE(a->last);
  const auto b = ch.pop();
  EXPECT_TRUE(b->last);
  EXPECT_FALSE(ch.pop().has_value());  // underflow -> nullopt
}

TEST(Stream, StatisticsTrackOccupancy) {
  AxiStreamChannel ch(2);
  ch.push_float(1.0f);
  ch.push_float(2.0f);
  ch.push_float(3.0f);  // beyond nominal depth
  EXPECT_EQ(ch.total_beats(), 3u);
  EXPECT_EQ(ch.high_water(), 3u);
  EXPECT_EQ(ch.backpressure_events(), 1u);
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_EQ(ch.total_beats(), 3u);  // lifetime counter survives clear
}

// ---------------------------------------------------------------- dma

TEST(Dma, Mm2sPushesPacketWithTlast) {
  AxiStreamChannel to_ip(64), from_ip(64);
  AxiDma dma(to_ip, from_ip);
  const std::vector<float> data = {1, 2, 3};
  const std::uint64_t cycles = dma.mm2s(data);
  EXPECT_EQ(cycles, AxiDma::kSetupCycles + 3);
  EXPECT_EQ(to_ip.size(), 3u);
  (void)to_ip.pop();
  (void)to_ip.pop();
  EXPECT_TRUE(to_ip.pop()->last);
  EXPECT_EQ(dma.mm2s_stats().transfers, 1u);
  EXPECT_EQ(dma.mm2s_stats().words, 3u);
}

TEST(Dma, S2mmDrainsAndChecksFraming) {
  AxiStreamChannel to_ip(64), from_ip(64);
  AxiDma dma(to_ip, from_ip);
  from_ip.push_float(5.0f, false);
  from_ip.push_float(6.0f, true);
  std::vector<float> out(2);
  bool ok = false;
  dma.s2mm(out, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[1], 6.0f);
  EXPECT_EQ(dma.s2mm_stats().errors, 0u);
}

TEST(Dma, S2mmUnderflowReportsError) {
  AxiStreamChannel to_ip(64), from_ip(64);
  AxiDma dma(to_ip, from_ip);
  from_ip.push_float(5.0f, true);
  std::vector<float> out(3);  // expects more words than available
  bool ok = true;
  dma.s2mm(out, &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(dma.s2mm_stats().errors, 1u);
}

TEST(Dma, S2mmEarlyTlastReportsError) {
  AxiStreamChannel to_ip(64), from_ip(64);
  AxiDma dma(to_ip, from_ip);
  from_ip.push_float(1.0f, true);  // TLAST on first of two expected beats
  from_ip.push_float(2.0f, false);
  std::vector<float> out(2);
  bool ok = true;
  dma.s2mm(out, &ok);
  EXPECT_FALSE(ok);
}

// ---------------------------------------------------------------- ip core

namespace {
Network tiny_net() {
  Network net(Shape{1, 6, 6}, "tiny");
  net.add_conv(2, 3, 3);
  net.add_max_pool(2, 2);
  net.add_linear(3);
  net.add_logsoftmax();
  cnn2fpga::util::Rng rng(17);
  net.init_weights(rng);
  return net;
}
}  // namespace

TEST(IpCore, ClassifiesPacketAndEchoesScores) {
  Network net = tiny_net();
  CnnIpCore core(net, cnn2fpga::hls::DirectiveSet::optimized(), cnn2fpga::hls::zedboard());

  AxiStreamChannel in(64), out(64);
  Tensor image(Shape{1, 6, 6});
  cnn2fpga::util::Rng rng(18);
  image.fill_uniform(rng, 0.0f, 1.0f);
  for (std::size_t i = 0; i < image.size(); ++i) {
    in.push_float(image[i], i + 1 == image.size());
  }

  const IpRunResult result = core.run(in, out);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.predicted, net.predict(image));
  EXPECT_EQ(result.cycles, core.report().latency_cycles);
  // Output packet: 3 scores + predicted index, TLAST on the index.
  EXPECT_EQ(out.size(), 4u);
  const Tensor expected = net.forward(image);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(*out.pop_float(), expected[k]);
  const auto last = out.pop();
  EXPECT_TRUE(last->last);
  EXPECT_EQ(bits_to_float(last->data), static_cast<float>(result.predicted));
  EXPECT_EQ(core.invocations(), 1u);
}

TEST(IpCore, ShortPacketFailsCleanly) {
  Network net = tiny_net();
  CnnIpCore core(net, cnn2fpga::hls::DirectiveSet::naive(), cnn2fpga::hls::zedboard());
  AxiStreamChannel in(64), out(64);
  in.push_float(1.0f, true);  // 1 beat instead of 36
  const IpRunResult result = core.run(in, out);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(core.invocations(), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(IpCore, MisplacedTlastFailsCleanly) {
  Network net = tiny_net();
  CnnIpCore core(net, cnn2fpga::hls::DirectiveSet::naive(), cnn2fpga::hls::zedboard());
  AxiStreamChannel in(64), out(64);
  for (std::size_t i = 0; i < 36; ++i) in.push_float(0.5f, i == 10);  // early TLAST
  EXPECT_FALSE(core.run(in, out).ok);
}

// ---------------------------------------------------------------- block design

TEST(BlockDesign, ClassifyMatchesSoftwarePrediction) {
  Network net = tiny_net();
  BlockDesign bd(net, cnn2fpga::hls::DirectiveSet::optimized(), cnn2fpga::hls::zedboard());

  cnn2fpga::util::Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    const ClassifyResult result = bd.classify(image);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.predicted, net.predict(image));
    EXPECT_GT(result.fabric_cycles, 0u);
    EXPECT_GT(result.seconds, kBlockingDriverSeconds);
  }
  EXPECT_EQ(bd.ps_transfers(), 10u);
  EXPECT_EQ(bd.dma().mm2s_stats().transfers, 10u);
  EXPECT_EQ(bd.dma().s2mm_stats().errors, 0u);
}

TEST(BlockDesign, BatchAccumulates) {
  Network net = tiny_net();
  BlockDesign bd(net, cnn2fpga::hls::DirectiveSet::optimized(), cnn2fpga::hls::zedboard());
  cnn2fpga::util::Rng rng(20);
  std::vector<Tensor> images;
  for (int i = 0; i < 5; ++i) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    images.push_back(image);
  }
  const BatchResult batch = bd.classify_batch(images);
  EXPECT_EQ(batch.images, 5u);
  EXPECT_EQ(batch.failures, 0u);
  EXPECT_EQ(batch.predictions.size(), 5u);
  EXPECT_GT(batch.seconds, 5 * kBlockingDriverSeconds);
}

TEST(BlockDesign, StreamingBatchIsFasterWithDataflow) {
  Network net = tiny_net();
  BlockDesign blocking(net, cnn2fpga::hls::DirectiveSet::optimized(), cnn2fpga::hls::zedboard());
  cnn2fpga::util::Rng rng(21);
  std::vector<Tensor> images;
  for (int i = 0; i < 20; ++i) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    images.push_back(image);
  }
  const BatchResult slow = blocking.classify_batch(images, /*streaming=*/false);
  Network net2 = tiny_net();
  BlockDesign streaming(net2, cnn2fpga::hls::DirectiveSet::optimized(),
                        cnn2fpga::hls::zedboard());
  const BatchResult fast = streaming.classify_batch(images, /*streaming=*/true);
  EXPECT_LT(fast.seconds, slow.seconds);
  EXPECT_EQ(fast.predictions, slow.predictions);  // timing mode never changes results
}

TEST(BlockDesign, OccupancyReportNamesEveryFig5Block) {
  Network net = tiny_net();
  BlockDesign bd(net, cnn2fpga::hls::DirectiveSet::naive(), cnn2fpga::hls::zedboard());
  Tensor image(Shape{1, 6, 6});
  (void)bd.classify(image);
  const std::string report = bd.occupancy_report();
  EXPECT_NE(report.find("ZYNQ7 PS"), std::string::npos);
  EXPECT_NE(report.find("AXI DMA"), std::string::npos);
  EXPECT_NE(report.find("Interconnect ctrl"), std::string::npos);
  EXPECT_NE(report.find("Interconnect data"), std::string::npos);
  EXPECT_NE(report.find("CNN IP core"), std::string::npos);
}

TEST(BlockDesign, ResetClearsStreams) {
  Network net = tiny_net();
  BlockDesign bd(net, cnn2fpga::hls::DirectiveSet::naive(), cnn2fpga::hls::zedboard());
  bd.reset();  // must be safe on a fresh design
  Tensor image(Shape{1, 6, 6});
  EXPECT_TRUE(bd.classify(image).ok);
  bd.reset();
  EXPECT_TRUE(bd.classify(image).ok);
}

TEST(Interconnect, CountsBurstsAndBytes) {
  AxiInterconnect ic("test");
  EXPECT_EQ(ic.record_burst(64), AxiInterconnect::kArbitrationCycles);
  ic.record_burst(128);
  EXPECT_EQ(ic.bursts(), 2u);
  EXPECT_EQ(ic.bytes(), 192u);
}
