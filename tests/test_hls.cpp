// Tests for the HLS simulator: device catalog, operator costs, scheduler,
// resource binder, lowering and the estimator facade.
#include <gtest/gtest.h>

#include "hls/estimator.hpp"
#include "hls/schedule.hpp"

using namespace cnn2fpga::hls;
using cnn2fpga::nn::Network;
using cnn2fpga::nn::Shape;

// ---------------------------------------------------------------- devices

TEST(Device, CatalogMatchesTableIIDenominators) {
  // The paper's Table II header: FF 106400, LUT 53200, Memory LUT 17400,
  // BRAM 140, DSP 220 for the Zedboard's XC7Z020.
  const FpgaDevice& z = zedboard();
  EXPECT_EQ(z.ff, 106400u);
  EXPECT_EQ(z.lut, 53200u);
  EXPECT_EQ(z.lutram, 17400u);
  EXPECT_EQ(z.bram36, 140u);
  EXPECT_EQ(z.dsp, 220u);
  EXPECT_DOUBLE_EQ(z.clock_mhz, 100.0);
}

TEST(Device, LookupIsCaseInsensitiveAndRejectsUnknown) {
  EXPECT_TRUE(find_device("ZedBoard").has_value());
  EXPECT_TRUE(find_device("zybo").has_value());
  EXPECT_TRUE(find_device("virtex7").has_value());  // paper's future-work target
  EXPECT_FALSE(find_device("de10").has_value());
}

TEST(Device, ZyboIsSmallerThanZedboard) {
  EXPECT_LT(zybo().dsp, zedboard().dsp);
  EXPECT_LT(zybo().bram36, zedboard().bram36);
}

// ---------------------------------------------------------------- op costs

TEST(OpCosts, ChainExcludesMemoryIncludesArithmetic) {
  OpCounts mac = {{OpKind::kFMul, 1}, {OpKind::kFAdd, 1}, {OpKind::kLoad, 2}};
  // fmul(4) + fadd(5); loads overlap.
  EXPECT_EQ(chain_latency(mac), 9);

  OpCounts stream = {{OpKind::kStream, 1}, {OpKind::kStore, 1}};
  EXPECT_EQ(chain_latency(stream), 1);  // the stream beat serializes

  OpCounts two_adds = {{OpKind::kFAdd, 2}};
  EXPECT_EQ(chain_latency(two_adds), 10);  // same-kind ops serialize
}

TEST(OpCosts, EveryOpHasPositiveLatency) {
  for (OpKind kind : {OpKind::kFAdd, OpKind::kFMul, OpKind::kFDiv, OpKind::kFCmp,
                      OpKind::kFExp, OpKind::kFLog, OpKind::kLoad, OpKind::kStore,
                      OpKind::kStream, OpKind::kIntOp}) {
    EXPECT_GT(op_cost(kind).latency, 0) << op_name(kind);
  }
}

TEST(OpCosts, TranscendentalsDominateDsp) {
  EXPECT_GT(op_cost(OpKind::kFExp).dsp, op_cost(OpKind::kFMul).dsp);
  EXPECT_GT(op_cost(OpKind::kFLog).dsp, op_cost(OpKind::kFAdd).dsp);
  EXPECT_EQ(op_cost(OpKind::kFCmp).dsp, 0);
}

// ---------------------------------------------------------------- loop nests

TEST(LoopNest, IterationArithmetic) {
  LoopNest nest;
  nest.trips = {6, 12, 12, 1, 5, 5};
  nest.reduction_levels = 3;
  EXPECT_EQ(nest.total_iterations(), 21600u);
  EXPECT_EQ(nest.outer_iterations(), 864u);
  EXPECT_EQ(nest.reduction_iterations(), 25u);
}

TEST(LoopNest, NoReductionLevels) {
  LoopNest nest;
  nest.trips = {256};
  EXPECT_EQ(nest.outer_iterations(), 256u);
  EXPECT_EQ(nest.reduction_iterations(), 1u);
}

// ---------------------------------------------------------------- scheduler

namespace {
TaskBlock mac_block(bool pipelined) {
  TaskBlock block;
  block.name = "conv";
  block.loops.trips = {4, 3, 1, 5};  // 12 outputs x 5 reduction steps
  block.loops.reduction_levels = 2;
  block.body = {{OpKind::kFMul, 1}, {OpKind::kFAdd, 1}, {OpKind::kLoad, 2}};
  block.per_output = {{OpKind::kStore, 1}};
  block.pipelined = pipelined;
  return block;
}
}  // namespace

TEST(Schedule, NaiveLatencyFormula) {
  const TaskBlock block = mac_block(false);
  const ScheduleConstants& k = schedule_constants();
  // 60 inner iterations * (chain 9 + overhead) + 12 outputs * (0 + 1) + region.
  const std::uint64_t expected =
      60u * (9 + k.loop_overhead) + 12u * 1 + k.region_overhead;
  EXPECT_EQ(block_latency(block), expected);
}

TEST(Schedule, PipelinedLatencyFormula) {
  const TaskBlock block = mac_block(true);
  const ScheduleConstants& k = schedule_constants();
  // 12 outer invocations of a 5-deep pipelined region at II=1.
  const std::uint64_t expected =
      12u * (5u * k.pipeline_ii + 9 + 0 + k.pipeline_overhead) + k.region_overhead;
  EXPECT_EQ(block_latency(block), expected);
}

TEST(Schedule, PipeliningNeverSlowsABlockDown) {
  EXPECT_LT(block_latency(mac_block(true)), block_latency(mac_block(false)));
}

TEST(Schedule, FullyFlattenedWhenNoReductionLevels) {
  TaskBlock block;
  block.name = "stream_in";
  block.loops.trips = {256};
  block.loops.reduction_levels = 0;
  block.body = {{OpKind::kStream, 1}, {OpKind::kStore, 1}};
  block.pipelined = true;
  const ScheduleConstants& k = schedule_constants();
  EXPECT_EQ(block_latency(block),
            256u * k.pipeline_ii + 1 + 0 + k.pipeline_overhead + k.region_overhead);
}

TEST(Schedule, DesignLatencyIsSumOfBlocks) {
  HlsDesign design;
  design.blocks = {mac_block(false), mac_block(false)};
  EXPECT_EQ(design_latency(design), 2 * block_latency(mac_block(false)));
}

TEST(Schedule, DataflowIntervalIsWorstBlock) {
  HlsDesign design;
  design.directives.dataflow = true;
  TaskBlock slow = mac_block(false);
  TaskBlock fast = mac_block(true);
  design.blocks = {fast, slow};
  EXPECT_EQ(design_interval(design), block_latency(slow));

  design.directives.dataflow = false;
  EXPECT_EQ(design_interval(design), design_latency(design));
}

TEST(Schedule, BatchLatencyPipelines) {
  HlsDesign design;
  design.directives.dataflow = true;
  design.blocks = {mac_block(true), mac_block(false)};
  const std::uint64_t l = design_latency(design);
  const std::uint64_t i = design_interval(design);
  EXPECT_EQ(batch_latency(design, 1), l);
  EXPECT_EQ(batch_latency(design, 10), l + 9 * i);
  EXPECT_EQ(batch_latency(design, 0), 0u);
}

TEST(Schedule, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(100'000'000, 100.0), 1.0);
  EXPECT_THROW(cycles_to_seconds(1, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- resources

TEST(Resources, SmallArraysGoToLutram) {
  ArrayDecl bias{"b", 10, 32, false, true};  // 320 bits <= threshold
  EXPECT_EQ(array_bram18(bias, false), 0u);
  EXPECT_GT(array_lutram(bias, false), 0u);
}

TEST(Resources, LargeArraysGoToBram) {
  ArrayDecl weights{"w", 2160, 32, false, true};  // 69 Kbit
  EXPECT_EQ(array_lutram(weights, false), 0u);
  // 2160 words / 512 words-per-BRAM18 -> 5.
  EXPECT_EQ(array_bram18(weights, false), 5u);
}

TEST(Resources, PingPongDoublesOnlyUnderDataflow) {
  ArrayDecl buffer{"buf", 864, 32, /*ping_pong=*/true, false};
  EXPECT_EQ(array_bram18(buffer, false), 2u);
  EXPECT_EQ(array_bram18(buffer, true), 4u);
  ArrayDecl rom{"w", 864, 32, /*ping_pong=*/false, true};
  EXPECT_EQ(array_bram18(rom, true), 2u);  // ROMs are not doubled
}

TEST(Resources, UtilizationAndOverflowDetection) {
  ResourceUsage usage;
  usage.dsp = 110;
  usage.bram18 = 560;  // 2 * 140 BRAM36 = 280 -> 200%
  const Utilization u = utilization(usage, zedboard());
  EXPECT_DOUBLE_EQ(u.dsp, 0.5);
  EXPECT_DOUBLE_EQ(u.bram, 2.0);
  EXPECT_FALSE(u.fits());
  EXPECT_DOUBLE_EQ(u.worst(), 2.0);
}

TEST(Resources, BindBlockCountsOperatorInstances) {
  const TaskBlock block = mac_block(false);
  const ResourceUsage usage = bind_block(block, false);
  // fmul (3 DSP) + fadd (2 DSP).
  EXPECT_EQ(usage.dsp, 5u);
  EXPECT_GT(usage.lut, 0u);
  EXPECT_GT(usage.ff, 0u);
}

TEST(Resources, PipeliningAddsControlLogicNotDsp) {
  const ResourceUsage naive = bind_block(mac_block(false), false);
  const ResourceUsage piped = bind_block(mac_block(true), false);
  EXPECT_EQ(piped.dsp, naive.dsp);
  EXPECT_GT(piped.lut, naive.lut);
}

// ---------------------------------------------------------------- lowering

TEST(Lowering, Test1BlockStructure) {
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsDesign design = lower_network(net, DirectiveSet::naive());
  // stream_in, conv0, maxpool1, linear2, logsoftmax3, softmax_norm3, stream_out.
  ASSERT_EQ(design.blocks.size(), 7u);
  EXPECT_EQ(design.blocks[0].name, "stream_in");
  EXPECT_EQ(design.blocks[1].name, "conv0");
  EXPECT_EQ(design.blocks[2].name, "maxpool1");
  EXPECT_EQ(design.blocks[3].name, "linear2");
  EXPECT_EQ(design.blocks.back().name, "stream_out");

  // Conv loop nest: 6 x 12 x 12 outer, 1 x 5 x 5 reduction.
  const TaskBlock& conv = design.blocks[1];
  EXPECT_EQ(conv.loops.outer_iterations(), 864u);
  EXPECT_EQ(conv.loops.reduction_iterations(), 25u);
  EXPECT_FALSE(conv.pipelined);
}

TEST(Lowering, OptimizedPipelinesConvAndLinearOnly) {
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsDesign design = lower_network(net, DirectiveSet::optimized());
  for (const TaskBlock& block : design.blocks) {
    const bool expect_pipelined =
        block.name.rfind("conv", 0) == 0 || block.name.rfind("linear", 0) == 0;
    EXPECT_EQ(block.pipelined, expect_pipelined) << block.name;
  }
}

TEST(Lowering, WeightArraysAreRomsBuffersPingPong) {
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsDesign design = lower_network(net, DirectiveSet::optimized());
  const TaskBlock& conv = design.blocks[1];
  ASSERT_EQ(conv.arrays.size(), 3u);
  EXPECT_TRUE(conv.arrays[0].is_rom);   // weights
  EXPECT_EQ(conv.arrays[0].depth, 150u);
  EXPECT_TRUE(conv.arrays[1].is_rom);   // bias
  EXPECT_FALSE(conv.arrays[2].is_rom);  // output buffer
  EXPECT_TRUE(conv.arrays[2].ping_pong);
  EXPECT_EQ(conv.arrays[2].depth, 864u);
}

// ---------------------------------------------------------------- estimator

TEST(Estimator, OptimizationGivesLargeSpeedupOnTest1) {
  // Paper Tests 1 vs 2: same network, naive vs DATAFLOW+PIPELINE, 6.23/1.18 =
  // ~5.3x latency improvement from the directives. Accept 3x..12x.
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsReport naive = estimate(net, DirectiveSet::naive(), zedboard());
  const HlsReport optimized = estimate(net, DirectiveSet::optimized(), zedboard());
  const double gain = static_cast<double>(naive.latency_cycles) /
                      static_cast<double>(optimized.latency_cycles);
  EXPECT_GT(gain, 3.0);
  EXPECT_LT(gain, 12.0);
}

TEST(Estimator, Test1LatencyInPaperRegime) {
  // Paper Test 1 (naive): 2.8 ms/image -> 280k cycles at 100 MHz. Accept
  // 150k..500k; Test 2 (optimized): 0.53 ms -> 53k. Accept 25k..90k.
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsReport naive = estimate(net, DirectiveSet::naive(), zedboard());
  EXPECT_GT(naive.latency_cycles, 150'000u);
  EXPECT_LT(naive.latency_cycles, 500'000u);
  const HlsReport optimized = estimate(net, DirectiveSet::optimized(), zedboard());
  EXPECT_GT(optimized.latency_cycles, 25'000u);
  EXPECT_LT(optimized.latency_cycles, 90'000u);
}

TEST(Estimator, DspIsDominantResourceForSmallNets) {
  // Paper Table II, Tests 1-3: "DSP slices are the most used resources".
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsReport report = estimate(net, DirectiveSet::naive(), zedboard());
  EXPECT_GT(report.util.dsp, report.util.lut);
  EXPECT_GT(report.util.dsp, report.util.ff);
  EXPECT_GT(report.util.dsp, report.util.bram);
  EXPECT_GT(report.util.dsp, report.util.lutram);
}

TEST(Estimator, BramDominatesForCifarNet) {
  // Paper Table II, Test 4: BRAM jumps to 76% and becomes the top resource.
  const Network net = cnn2fpga::nn::make_test4_network();
  const HlsReport report = estimate(net, DirectiveSet::optimized(), zedboard());
  EXPECT_GT(report.util.bram, 0.4);
  EXPECT_LT(report.util.bram, 1.0);
  EXPECT_GT(report.util.bram, report.util.dsp);
  EXPECT_TRUE(report.fits());
}

TEST(Estimator, BiggerNetworksUseMoreResources) {
  const HlsReport t1 =
      estimate(cnn2fpga::nn::make_test1_network(), DirectiveSet::optimized(), zedboard());
  const HlsReport t3 =
      estimate(cnn2fpga::nn::make_test3_network(), DirectiveSet::optimized(), zedboard());
  const HlsReport t4 =
      estimate(cnn2fpga::nn::make_test4_network(), DirectiveSet::optimized(), zedboard());
  EXPECT_GE(t3.usage.dsp, t1.usage.dsp);
  EXPECT_GT(t3.usage.bram18, t1.usage.bram18);
  EXPECT_GT(t4.usage.bram18, t3.usage.bram18);
  EXPECT_GT(t4.latency_cycles, t3.latency_cycles);
}

TEST(Estimator, Test4DoesNotFitZybo) {
  // 178 KiB of weights cannot fit the Zybo's 60 BRAM36 (270 KiB) alongside
  // the buffers? It nearly can -- but the Zybo's 80 DSPs are also tight.
  // The report must at least flag *some* overflow or near-saturation.
  const Network net = cnn2fpga::nn::make_test4_network();
  const HlsReport report = estimate(net, DirectiveSet::optimized(), zybo());
  EXPECT_GT(report.util.worst(), 0.9);
}

TEST(Estimator, ReportStringContainsBlocksAndUtilization) {
  const Network net = cnn2fpga::nn::make_test1_network();
  const HlsReport report = estimate(net, DirectiveSet::optimized(), zedboard());
  const std::string s = report.to_string();
  EXPECT_NE(s.find("conv0"), std::string::npos);
  EXPECT_NE(s.find("utilization"), std::string::npos);
  EXPECT_NE(s.find("DATAFLOW+PIPELINE"), std::string::npos);
}

TEST(Estimator, DirectiveSetToString) {
  EXPECT_EQ(DirectiveSet::naive().to_string(), "none");
  EXPECT_EQ(DirectiveSet::optimized().to_string(), "DATAFLOW+PIPELINE");
  EXPECT_EQ((DirectiveSet{true, false}).to_string(), "PIPELINE");
  EXPECT_EQ((DirectiveSet{false, true}).to_string(), "DATAFLOW");
}
