// Tests for the automated design-space exploration engine.
#include <gtest/gtest.h>

#include "core/dse.hpp"
#include "json/json.hpp"
#include "web/api.hpp"

using namespace cnn2fpga;
using core::DseObjective;
using core::DseOptions;
using core::DseResult;

namespace {
core::NetworkDescriptor small_architecture() {
  core::NetworkDescriptor d;
  d.name = "dse_net";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  return d;
}

core::NetworkDescriptor cifar_architecture() {
  core::NetworkDescriptor d;
  d.name = "dse_cifar";
  d.input_channels = 3;
  d.input_height = 32;
  d.input_width = 32;
  core::LayerSpec conv1;
  conv1.type = core::LayerSpec::Type::kConv;
  conv1.conv.feature_maps_out = 12;
  conv1.conv.kernel_h = conv1.conv.kernel_w = 5;
  conv1.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec conv2;
  conv2.type = core::LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 36;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  conv2.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin1;
  lin1.type = core::LayerSpec::Type::kLinear;
  lin1.linear.neurons = 36;
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  d.layers = {conv1, conv2, lin1, lin2};
  return d;
}
}  // namespace

TEST(Dse, EnumeratesTheFullSpace) {
  const DseResult result = core::explore_design_space(small_architecture());
  // 3 boards x 2 directive sets x 2 precisions.
  EXPECT_EQ(result.points.size(), 12u);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.points[*result.best].fits);
  EXPECT_FALSE(result.pareto.empty());
}

TEST(Dse, ParetoFrontIsNonDominatedAndSorted) {
  const DseResult result = core::explore_design_space(small_architecture());
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    const core::DsePoint& a = result.points[result.pareto[i]];
    EXPECT_TRUE(a.fits);
    if (i > 0) {
      EXPECT_LE(a.images_per_second,
                result.points[result.pareto[i - 1]].images_per_second);
    }
    for (const core::DsePoint& b : result.points) {
      if (!b.fits) continue;
      const bool dominates = b.images_per_second >= a.images_per_second &&
                             b.power_w <= a.power_w &&
                             (b.images_per_second > a.images_per_second ||
                              b.power_w < a.power_w);
      EXPECT_FALSE(dominates) << a.label() << " dominated by " << b.label();
    }
  }
}

TEST(Dse, ObjectivesPickAccordingly) {
  DseOptions options;
  options.objective = DseObjective::kThroughput;
  const DseResult by_throughput = core::explore_design_space(small_architecture(), options);
  options.objective = DseObjective::kEnergy;
  const DseResult by_energy = core::explore_design_space(small_architecture(), options);
  options.objective = DseObjective::kLatency;
  const DseResult by_latency = core::explore_design_space(small_architecture(), options);

  ASSERT_TRUE(by_throughput.best && by_energy.best && by_latency.best);
  const auto& t = by_throughput.points[*by_throughput.best];
  const auto& e = by_energy.points[*by_energy.best];
  const auto& l = by_latency.points[*by_latency.best];
  // Each winner is optimal in its own metric over every feasible point.
  for (const core::DsePoint& p : by_throughput.points) {
    if (!p.fits) continue;
    EXPECT_GE(t.images_per_second, p.images_per_second);
    EXPECT_LE(e.joules_per_image, p.joules_per_image);
    EXPECT_LE(l.latency_seconds, p.latency_seconds);
  }
  // And every winner uses the optimized directive set (dominant on all axes).
  EXPECT_TRUE(t.optimize);
  EXPECT_TRUE(e.optimize);
  EXPECT_TRUE(l.optimize);
}

TEST(Dse, InfeasiblePointsNeverRecommended) {
  // The CIFAR architecture in float32 does not fit the Zybo, but fixed Q8.8
  // or a bigger board does; the recommendation must be a fitting point.
  DseOptions options;
  const DseResult result = core::explore_design_space(cifar_architecture(), options);
  bool some_infeasible = false;
  for (const core::DsePoint& p : result.points) some_infeasible |= !p.fits;
  EXPECT_TRUE(some_infeasible);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.points[*result.best].fits);
}

TEST(Dse, RestrictedBoardList) {
  DseOptions options;
  options.boards = {"zybo"};
  options.explore_directives = false;
  options.precisions = {nn::NumericFormat::float32()};
  const DseResult result = core::explore_design_space(small_architecture(), options);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].board, "zybo");
  EXPECT_TRUE(result.points[0].optimize);

  options.boards = {"nonexistent"};
  EXPECT_THROW(core::explore_design_space(small_architecture(), options),
               core::DescriptorError);
}

TEST(Dse, ObjectiveParsing) {
  EXPECT_EQ(core::parse_objective("throughput"), DseObjective::kThroughput);
  EXPECT_EQ(core::parse_objective("ENERGY"), DseObjective::kEnergy);
  EXPECT_EQ(core::parse_objective("latency"), DseObjective::kLatency);
  EXPECT_THROW(core::parse_objective("area"), core::DescriptorError);
}

TEST(Dse, RenderedReportNamesWinner) {
  const DseResult result = core::explore_design_space(small_architecture());
  const std::string text = result.to_string();
  EXPECT_NE(text.find("recommended:"), std::string::npos);
  EXPECT_NE(text.find("zedboard"), std::string::npos);
  EXPECT_NE(text.find("Q8.8"), std::string::npos);
}

TEST(DseApi, ExploreEndpoint) {
  web::HttpRequest request;
  request.body = R"({
    "name": "api_dse", "objective": "energy",
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 6, "kernel": 5,
       "pool": {"type": "max", "kernel": 2, "step": 2}},
      {"type": "linear", "neurons": 10}
    ]})";
  const web::HttpResponse response = web::handle_explore(request);
  ASSERT_EQ(response.status, 200) << response.body;
  const auto body = json::parse(response.body);
  EXPECT_EQ(body.at("objective").as_string(), "energy");
  EXPECT_EQ(body.at("points").as_array().size(), 12u);
  EXPECT_FALSE(body.at("recommended").is_null());

  // Exactly the Pareto-marked points are flagged.
  std::size_t flagged = 0;
  for (const auto& p : body.at("points").as_array()) {
    if (p.at("pareto").as_bool()) ++flagged;
  }
  EXPECT_GE(flagged, 1u);
}

TEST(DseApi, RejectsBadObjective) {
  web::HttpRequest request;
  request.body = R"({
    "objective": "vibes",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})";
  EXPECT_EQ(web::handle_explore(request).status, 400);
}
