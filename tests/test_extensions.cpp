// Tests for the extension features: base64 transport, roofline analysis
// (the Zhang et al. [9] methodology), and the online-training web API
// (the paper's stated future work).
#include <gtest/gtest.h>

#include "hls/roofline.hpp"
#include "json/json.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "web/api.hpp"

using namespace cnn2fpga;
namespace json = cnn2fpga::json;

// ---------------------------------------------------------------- base64

TEST(Base64, KnownVectors) {
  // RFC 4648 test vectors.
  const auto enc = [](const std::string& s) {
    return util::base64_encode(std::vector<std::uint8_t>(s.begin(), s.end()));
  };
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, RoundTripsRandomBinary) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto decoded = util::base64_decode(util::base64_encode(bytes));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bytes);
  }
}

TEST(Base64, RejectsMalformedInput) {
  EXPECT_FALSE(util::base64_decode("abc").has_value());       // length % 4
  EXPECT_FALSE(util::base64_decode("ab!d").has_value());      // bad character
  EXPECT_FALSE(util::base64_decode("=abc").has_value());      // leading padding
  EXPECT_FALSE(util::base64_decode("Zg==Zg==").has_value());  // padding mid-stream
  EXPECT_FALSE(util::base64_decode("Z===").has_value());      // 3 pad chars
  EXPECT_TRUE(util::base64_decode("").has_value());
}

// ---------------------------------------------------------------- roofline

TEST(Roofline, PlatformRoofsAreSane) {
  const auto float_platform =
      hls::RooflinePlatform::for_device(hls::zedboard(), nn::NumericFormat::float32());
  // 220 DSP / 5 per MAC = 44 MAC/cycle -> 8.8 GFLOP/s at 100 MHz.
  EXPECT_DOUBLE_EQ(float_platform.peak_macs_per_cycle, 44.0);
  EXPECT_NEAR(float_platform.computational_roof_gflops(), 8.8, 1e-9);

  const auto fixed_platform = hls::RooflinePlatform::for_device(
      hls::zedboard(), nn::NumericFormat::fixed_point(16, 8));
  EXPECT_GT(fixed_platform.computational_roof_gflops(),
            float_platform.computational_roof_gflops());
}

TEST(Roofline, GeneratedDesignsAreComputeBound) {
  // Weights live on-chip, so CTC is enormous and the designs sit under the
  // computational roof — the regime Zhang et al. engineer their designs into.
  const nn::Network net = nn::make_test4_network();
  const hls::RooflinePoint point =
      hls::roofline_analysis(net, hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_TRUE(point.compute_bound);
  EXPECT_GT(point.ctc_ratio, 100.0);
  EXPECT_GT(point.achieved_gflops, 0.0);
  EXPECT_LE(point.roof_fraction, 1.0);
  EXPECT_GT(point.roof_fraction, 0.01);
}

TEST(Roofline, PipeliningMovesTowardTheRoof) {
  const nn::Network net = nn::make_test1_network();
  const hls::RooflinePoint naive =
      hls::roofline_analysis(net, hls::DirectiveSet::naive(), hls::zedboard());
  const hls::RooflinePoint optimized =
      hls::roofline_analysis(net, hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_GT(optimized.achieved_gflops, naive.achieved_gflops);
  EXPECT_GT(optimized.roof_fraction, naive.roof_fraction);
}

TEST(Roofline, FlopsMatchMacCount) {
  const nn::Network net = nn::make_test1_network();
  const hls::RooflinePoint point =
      hls::roofline_analysis(net, hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_DOUBLE_EQ(point.flops_per_image, 2.0 * static_cast<double>(net.total_macs()));
  // 256 input floats + 11 output words.
  EXPECT_DOUBLE_EQ(point.offchip_bytes_per_image, (256 + 11) * 4.0);
}

// ---------------------------------------------------------------- train API

namespace {
const char* kTrainRequest = R"({
  "name": "online_net",
  "board": "zedboard",
  "optimize": true,
  "input": {"channels": 1, "height": 16, "width": 16},
  "layers": [
    {"type": "conv", "feature_maps_out": 6, "kernel": 5,
     "pool": {"type": "max", "kernel": 2, "step": 2}},
    {"type": "linear", "neurons": 10}
  ],
  "train": {"dataset": "usps", "samples_per_class": 8, "epochs": 4,
            "learning_rate": 0.005, "seed": 3}
})";
}  // namespace

TEST(TrainApi, TrainsAndReturnsWeights) {
  web::HttpRequest request;
  request.body = kTrainRequest;
  const web::HttpResponse response = web::handle_train(request);
  ASSERT_EQ(response.status, 200) << response.body;

  const auto body = json::parse(response.body);
  EXPECT_EQ(body.at("dataset").as_string(), "usps");
  EXPECT_EQ(body.at("epoch_loss").as_array().size(), 4u);
  EXPECT_LT(body.at("train_error").as_double(), 0.5);
  EXPECT_GE(body.at("test_error").as_double(), 0.0);
  const auto weights = util::base64_decode(body.at("weights_base64").as_string());
  ASSERT_TRUE(weights.has_value());
  EXPECT_GT(weights->size(), 1000u);  // 2326 floats + framing
}

TEST(TrainApi, TrainedWeightsFeedBackIntoGenerate) {
  web::HttpRequest train_request;
  train_request.body = kTrainRequest;
  const auto train_body = json::parse(web::handle_train(train_request).body);

  // Build the /api/v1/generate request: descriptor + weights_base64.
  auto generate_doc = json::parse(kTrainRequest);
  generate_doc.as_object().erase("train");
  generate_doc["weights_base64"] = train_body.at("weights_base64");

  web::HttpRequest generate_request;
  generate_request.body = json::Value(generate_doc).dump();
  const web::HttpResponse response = web::handle_generate(generate_request);
  ASSERT_EQ(response.status, 200) << response.body;
  const auto body = json::parse(response.body);
  EXPECT_NE(body.at("cpp_source").as_string().find("w_conv0"), std::string::npos);
}

TEST(TrainApi, RejectsUnknownDataset) {
  auto doc = json::parse(kTrainRequest);
  doc["train"]["dataset"] = json::Value("imagenet");
  web::HttpRequest request;
  request.body = json::Value(doc).dump();
  EXPECT_EQ(web::handle_train(request).status, 400);
}

TEST(TrainApi, RejectsInputShapeMismatch) {
  auto doc = json::parse(kTrainRequest);
  doc["train"]["dataset"] = json::Value("cifar10");  // expects 3x32x32
  web::HttpRequest request;
  request.body = json::Value(doc).dump();
  const auto response = web::handle_train(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("does not match"), std::string::npos);
}

TEST(TrainApi, RejectsAbsurdBudgets) {
  auto doc = json::parse(kTrainRequest);
  doc["train"]["epochs"] = json::Value(10000);
  web::HttpRequest request;
  request.body = json::Value(doc).dump();
  EXPECT_EQ(web::handle_train(request).status, 400);
}

TEST(GenerateApi, RejectsBadWeightPayloads) {
  auto doc = json::parse(kTrainRequest);
  doc.as_object().erase("train");

  doc["weights_base64"] = json::Value("!!!not-base64!!!");
  web::HttpRequest request;
  request.body = json::Value(doc).dump();
  EXPECT_EQ(web::handle_generate(request).status, 400);

  // Valid base64 but not a weight file.
  doc["weights_base64"] =
      json::Value(util::base64_encode({'h', 'e', 'l', 'l', 'o'}));
  request.body = json::Value(doc).dump();
  const auto response = web::handle_generate(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("magic"), std::string::npos);
}

TEST(TrainApi, ServedOverHttp) {
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);
  const auto response =
      web::http_request("127.0.0.1", port, "POST", "/api/v1/train", kTrainRequest);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  server.stop();
}
