// Precision ablation: float32 (the paper's choice) vs fixed-point formats.
//
// The paper justifies float32 by accuracy ("it reduces the prediction error
// and makes the hardware solution prediction similar to the software one")
// while conceding the resource cost ("this reasonably implies a higher usage
// of resources", Sec. V). This bench quantifies that trade-off on the Test-1
// network: per numeric format it reports prediction error (trained net,
// quantized inference), latency, DSP/BRAM/LUT pressure and energy per
// classification.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/fixed_inference.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Precision ablation: float32 vs fixed-point (Test 1 network) ==\n");

  // Train once in float (training always happens in float; quantization is
  // an inference-time decision).
  const core::NetworkDescriptor d = usps_test1_descriptor(true);
  nn::Network net = train_usps_network(d, /*seed=*/3, /*epochs=*/8);
  const auto test_set = usps_test_set(500);
  const float float_error = nn::SgdTrainer::evaluate_error(net, test_set);

  struct FormatCase {
    std::string label;
    nn::NumericFormat format;
  };
  const std::vector<FormatCase> cases = {
      {"float32 (paper)", nn::NumericFormat::float32()},
      {"Q16.16", nn::NumericFormat::fixed_point(32, 16)},
      {"Q8.8", nn::NumericFormat::fixed_point(16, 8)},
      {"Q4.4", nn::NumericFormat::fixed_point(8, 4)},
      {"Q3.3", nn::NumericFormat::fixed_point(6, 3)},
  };

  util::Table table({"format", "test error", "latency (cyc)", "DSP%", "BRAM%", "LUT%",
                     "power", "mJ/img"});
  std::vector<double> errors, dsp, bram;
  for (const FormatCase& c : cases) {
    const float error = c.format.is_fixed
                            ? nn::evaluate_error_fixed(net, test_set, c.format.fixed)
                            : float_error;
    const hls::HlsReport report =
        hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard(), c.format);
    const double per_image = report.latency_seconds() + axi::kBlockingDriverSeconds;
    const double watts = power::hardware_power_w(report.usage);
    table.add_row({c.label, pct(error),
                   util::format("%llu", (unsigned long long)report.latency_cycles),
                   pct(report.util.dsp), pct(report.util.bram), pct(report.util.lut),
                   util::format("%.2fW", watts), util::format("%.3f", watts * per_image * 1e3)});
    errors.push_back(error);
    dsp.push_back(report.util.dsp);
    bram.push_back(report.util.bram);
  }
  std::fputs(table.render().c_str(), stdout);

  // Shape claims: moderate fixed formats match float accuracy at a fraction
  // of the DSP/BRAM budget; very coarse formats finally break accuracy.
  bool ok = true;
  ok &= errors[2] <= errors[0] + 0.05;  // Q8.8 within 5 points of float
  ok &= dsp[2] < dsp[0];                // and cheaper in DSPs
  ok &= bram[2] < bram[0];              // and in BRAM
  ok &= errors[4] >= errors[2];         // Q3.3 no better than Q8.8
  std::printf("\nshape check (Q8.8 ~ float accuracy at lower cost; Q3.3 degrades): %s\n",
              ok ? "PASS" : "FAIL");
  std::puts("conclusion: the paper's float32 maximizes fidelity; Q8.8 is the better\n"
            "area/accuracy point when the FPGA budget is the binding constraint.");
  return ok ? 0 : 1;
}
