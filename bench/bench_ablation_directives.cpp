// Ablation of the HLS optimization directives (paper Sec. V-E: the authors
// explored the design space with Vivado HLS and "decided to include such
// optimization directives in the C++ source code generation"). This bench
// regenerates that exploration: every directive combination on every
// evaluation network, reporting latency, steady-state interval, resources and
// energy per classification — showing why DATAFLOW+PIPELINE is the shipped
// default.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Directive ablation (Sec. V-E design-space exploration) ==\n");

  const std::vector<std::pair<std::string, core::NetworkDescriptor>> nets = {
      {"usps_test1", usps_test1_descriptor(false)},
      {"usps_test3", usps_test3_descriptor()},
      {"cifar10_test4", cifar_test4_descriptor()},
  };
  const std::vector<std::pair<std::string, hls::DirectiveSet>> combos = {
      {"none", {false, false}},
      {"PIPELINE", {true, false}},
      {"DATAFLOW", {false, true}},
      {"DATAFLOW+PIPELINE", {true, true}},
  };

  bool ok = true;
  for (const auto& [net_label, descriptor] : nets) {
    nn::Network net = descriptor.build_network();
    util::Rng rng(1);
    net.init_weights(rng);

    std::printf("-- %s --\n", net_label.c_str());
    util::Table table({"directives", "latency (cyc)", "interval (cyc)", "ms/img (blocking)",
                       "LUT%", "DSP%", "BRAM%", "mJ/img"});

    std::uint64_t latency_none = 0, latency_both = 0, interval_df = 0, interval_none = 0;
    for (const auto& [combo_label, directives] : combos) {
      const hls::HlsReport report = hls::estimate(net, directives, hls::zedboard());
      const double per_image =
          report.latency_seconds() + axi::kBlockingDriverSeconds;
      const double energy_mj = power::hardware_power_w(report.usage) * per_image * 1e3;
      table.add_row({combo_label,
                     util::format("%llu", (unsigned long long)report.latency_cycles),
                     util::format("%llu", (unsigned long long)report.interval_cycles),
                     util::format("%.3f", per_image * 1e3), pct(report.util.lut),
                     pct(report.util.dsp), pct(report.util.bram),
                     util::format("%.3f", energy_mj)});
      if (combo_label == "none") {
        latency_none = report.latency_cycles;
        interval_none = report.interval_cycles;
      }
      if (combo_label == "DATAFLOW+PIPELINE") latency_both = report.latency_cycles;
      if (combo_label == "DATAFLOW") interval_df = report.interval_cycles;
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");

    // The exploration's conclusions: PIPELINE drives single-image latency
    // down; DATAFLOW cuts the steady-state interval (throughput) even alone.
    ok &= latency_both * 3 < latency_none;
    ok &= interval_df < interval_none;
  }

  std::printf("shape check (PIPELINE >=3x latency, DATAFLOW cuts interval): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
