// Shared setup for the table/figure reproduction benches: the four case-study
// descriptors of the paper's evaluation (Sec. V) and the measurement loop
// around them.
#pragma once

#include <string>
#include <vector>

#include "cnn2fpga.hpp"

namespace cnn2fpga::bench {

inline core::NetworkDescriptor usps_test1_descriptor(bool optimize) {
  core::NetworkDescriptor d;
  d.name = optimize ? "usps_test2" : "usps_test1";
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = optimize;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  return d;
}

inline core::NetworkDescriptor usps_test3_descriptor() {
  core::NetworkDescriptor d = usps_test1_descriptor(true);
  d.name = "usps_test3";
  core::LayerSpec conv2;
  conv2.type = core::LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 16;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  d.layers.insert(d.layers.begin() + 1, conv2);
  return d;
}

inline core::NetworkDescriptor cifar_test4_descriptor() {
  core::NetworkDescriptor d;
  d.name = "cifar10_test4";
  d.board = "zedboard";
  d.input_channels = 3;
  d.input_height = 32;
  d.input_width = 32;
  d.optimize = true;
  core::LayerSpec conv1;
  conv1.type = core::LayerSpec::Type::kConv;
  conv1.conv.feature_maps_out = 12;
  conv1.conv.kernel_h = conv1.conv.kernel_w = 5;
  conv1.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec conv2;
  conv2.type = core::LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 36;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  conv2.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin1;
  lin1.type = core::LayerSpec::Type::kLinear;
  lin1.linear.neurons = 36;
  lin1.linear.activation = nn::ActKind::kTanh;
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  d.layers = {conv1, conv2, lin1, lin2};
  return d;
}

/// Train the Test-1/2/3 networks on the synthetic USPS corpus (the paper uses
/// Torch offline; the budget here is sized so a bench run stays in seconds).
inline nn::Network train_usps_network(const core::NetworkDescriptor& descriptor,
                                      std::uint64_t seed, std::size_t epochs = 6,
                                      float learning_rate = 0.005f) {
  data::UspsConfig train_config;
  train_config.samples_per_class = 20;
  train_config.seed = 100 + seed;
  const auto train_set = data::generate_usps(train_config).samples;

  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.learning_rate = learning_rate;
  nn::SgdTrainer(tc).train(net, train_set, {});
  return net;
}

inline std::vector<nn::Sample> usps_test_set(std::size_t count, std::uint64_t seed = 777) {
  data::UspsConfig config;
  config.samples_per_class = (count + 9) / 10;
  config.seed = seed;
  auto samples = data::generate_usps(config).samples;
  samples.resize(count);
  return samples;
}

inline std::vector<nn::Sample> cifar_test_set(std::size_t count, std::uint64_t seed = 888) {
  data::CifarConfig config;
  config.samples_per_class = (count + 9) / 10;
  config.seed = seed;
  auto samples = data::generate_cifar(config).samples;
  samples.resize(count);
  return samples;
}

inline std::string pct(double fraction) { return util::format("%.2f%%", fraction * 100.0); }

}  // namespace cnn2fpga::bench
