// Roofline placement of the generated designs (the analysis methodology of
// the paper's main related-work baseline, Zhang et al. [9]).
//
// For every evaluation network x directive set (and the fixed-point
// extension), this bench reports computation-to-communication ratio,
// attainable performance (min of computational roof and bandwidth roof) and
// the achieved GFLOP/s of the synthesized design — showing how the paper's
// directive flow climbs toward the roof, and how much headroom the platform
// still has (the "room for bigger networks" of Sec. V-B).
#include <cstdio>

#include "bench_common.hpp"
#include "hls/roofline.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Roofline analysis (Zhang et al. [9] methodology, Zedboard) ==\n");

  const auto float_platform =
      hls::RooflinePlatform::for_device(hls::zedboard(), nn::NumericFormat::float32());
  std::printf("float32 computational roof: %.2f GFLOP/s (%g DSP-limited MAC/cycle @ %.0f MHz)\n",
              float_platform.computational_roof_gflops(), float_platform.peak_macs_per_cycle,
              float_platform.clock_mhz);
  const auto fixed_platform = hls::RooflinePlatform::for_device(
      hls::zedboard(), nn::NumericFormat::fixed_point(16, 8));
  std::printf("Q8.8 computational roof:    %.2f GFLOP/s\n",
              fixed_platform.computational_roof_gflops());
  std::printf("bandwidth roof slope:       %.2f GB/s (HP-port stream)\n\n",
              float_platform.dram_bandwidth_bytes_per_s / 1e9);

  util::Table table({"network", "directives/format", "CTC (FLOP/B)", "attainable GF/s",
                     "achieved GF/s", "% of roof", "bound"});

  bool ok = true;
  double naive_fraction = 0, opt_fraction = 0;
  for (const auto& [label, descriptor] :
       std::vector<std::pair<std::string, core::NetworkDescriptor>>{
           {"usps_test1", usps_test1_descriptor(false)},
           {"usps_test3", usps_test3_descriptor()},
           {"cifar10_test4", cifar_test4_descriptor()}}) {
    nn::Network net = descriptor.build_network();
    util::Rng rng(1);
    net.init_weights(rng);

    struct Config {
      std::string name;
      hls::DirectiveSet directives;
      nn::NumericFormat format;
    };
    const std::vector<Config> configs = {
        {"naive / float32", hls::DirectiveSet::naive(), nn::NumericFormat::float32()},
        {"DF+PIPE / float32", hls::DirectiveSet::optimized(), nn::NumericFormat::float32()},
        {"DF+PIPE / Q8.8", hls::DirectiveSet::optimized(),
         nn::NumericFormat::fixed_point(16, 8)},
    };
    for (const Config& config : configs) {
      const hls::RooflinePoint point =
          hls::roofline_analysis(net, config.directives, hls::zedboard(), config.format);
      table.add_row({label, config.name, util::format("%.0f", point.ctc_ratio),
                     util::format("%.2f", point.attainable_gflops),
                     util::format("%.3f", point.achieved_gflops),
                     util::format("%.1f%%", point.roof_fraction * 100.0),
                     point.compute_bound ? "compute" : "bandwidth"});
      ok &= point.achieved_gflops <= point.attainable_gflops * 1.0001;
      // On-chip weights make every float32 design compute-bound; Q8.8 raises
      // the compute roof 5x, which can tip the smallest network over to the
      // bandwidth side — itself a roofline insight worth surfacing.
      if (!config.format.is_fixed) ok &= point.compute_bound;
      if (label == "cifar10_test4" && config.name == "naive / float32") {
        naive_fraction = point.roof_fraction;
      }
      if (label == "cifar10_test4" && config.name == "DF+PIPE / float32") {
        opt_fraction = point.roof_fraction;
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);

  ok &= opt_fraction > 3.0 * naive_fraction;  // directives climb the roofline
  std::printf("\nshape check (designs below roof, compute-bound, directives climb %.1fx): %s\n",
              naive_fraction > 0 ? opt_fraction / naive_fraction : 0.0, ok ? "PASS" : "FAIL");
  std::puts("note: Zhang et al. reach 61.62 GFLOPS on a VX485T (2800 DSPs, 4.5 GB/s);\n"
            "the Zedboard's 220 DSPs cap the float roof at 8.8 GFLOP/s, which is why the\n"
            "paper's absolute numbers are in a different league than [9] by construction.");
  return ok ? 0 : 1;
}
