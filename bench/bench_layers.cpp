// Layer-primitive microbenchmarks (google-benchmark): host-side throughput of
// the reference library kernels that both the software baseline and the
// functional model of the generated hardware execute. The paper's Table I
// software column is modeled analytically; these benches pin down the real
// arithmetic the model abstracts.
#include <benchmark/benchmark.h>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

namespace {
nn::Tensor random_tensor(nn::Shape shape, std::uint64_t seed) {
  nn::Tensor t(shape);
  util::Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}
}  // namespace

static void BM_Conv2D(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::size_t maps = static_cast<std::size_t>(state.range(1));
  nn::Conv2D conv(1, maps, 5, 5);
  util::Rng rng(1);
  conv.init_weights(rng);
  const nn::Tensor x = random_tensor(nn::Shape{1, size, size}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(conv.mac_count(x.shape())));
}
BENCHMARK(BM_Conv2D)->Args({16, 6})->Args({32, 12})->Args({32, 36});

static void BM_Conv2DInfer(benchmark::State& state) {
  // Same workload as BM_Conv2D through the im2col + blocked-GEMM fast path
  // (caller-owned scratch, fused bias). The ratio of the two is the fast
  // path's win; their outputs are bit-identical (tests/test_execution.cpp).
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const std::size_t maps = static_cast<std::size_t>(state.range(1));
  nn::Conv2D conv(1, maps, 5, 5);
  util::Rng rng(1);
  conv.init_weights(rng);
  const nn::Tensor x = random_tensor(nn::Shape{1, size, size}, 2);
  nn::Tensor out{conv.output_shape(x.shape())};
  std::vector<float> col(conv.col_scratch_size(x.shape()));
  for (auto _ : state) {
    conv.infer_into(x, out, col.data(), /*fused=*/nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(conv.mac_count(x.shape())));
}
BENCHMARK(BM_Conv2DInfer)->Args({16, 6})->Args({32, 12})->Args({32, 36});

static void BM_MaxPool(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  nn::Pool2D pool = nn::Pool2D::max_pool(2);
  const nn::Tensor x = random_tensor(nn::Shape{6, size, size}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.forward(x, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_MaxPool)->Arg(12)->Arg(28)->Arg(64);

static void BM_Linear(benchmark::State& state) {
  const std::size_t in = static_cast<std::size_t>(state.range(0));
  const std::size_t out = static_cast<std::size_t>(state.range(1));
  nn::Linear lin(in, out);
  util::Rng rng(4);
  lin.init_weights(rng);
  const nn::Tensor x = random_tensor(nn::Shape{in}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lin.forward(x, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in * out));
}
BENCHMARK(BM_Linear)->Args({216, 10})->Args({900, 36})->Args({4096, 128});

static void BM_LogSoftMax(benchmark::State& state) {
  nn::LogSoftMax lsm;
  const nn::Tensor x = random_tensor(nn::Shape{static_cast<std::size_t>(state.range(0))}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsm.forward(x, false));
  }
}
BENCHMARK(BM_LogSoftMax)->Arg(10)->Arg(1000);

static void BM_FullForwardTest1(benchmark::State& state) {
  nn::Network net = nn::make_test1_network();
  util::Rng rng(7);
  net.init_weights(rng);
  const nn::Tensor x = random_tensor(nn::Shape{1, 16, 16}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullForwardTest1);

static void BM_FullForwardTest4(benchmark::State& state) {
  nn::Network net = nn::make_test4_network();
  util::Rng rng(9);
  net.init_weights(rng);
  const nn::Tensor x = random_tensor(nn::Shape{3, 32, 32}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullForwardTest4);

static void BM_FullInferTest1(benchmark::State& state) {
  // BM_FullForwardTest1 through the reentrant ExecutionContext engine: the
  // plan is compiled once, arenas are reused, conv runs the fast path.
  nn::Network net = nn::make_test1_network();
  util::Rng rng(7);
  net.init_weights(rng);
  nn::ExecutionContext ctx(net);
  const nn::Tensor x = random_tensor(nn::Shape{1, 16, 16}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.infer(x, ctx).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullInferTest1);

static void BM_FullInferTest4(benchmark::State& state) {
  nn::Network net = nn::make_test4_network();
  util::Rng rng(9);
  net.init_weights(rng);
  nn::ExecutionContext ctx(net);
  const nn::Tensor x = random_tensor(nn::Shape{3, 32, 32}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.infer(x, ctx).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullInferTest4);

static void BM_FullInferTest4Scalar(benchmark::State& state) {
  // BM_FullInferTest4 with the context pinned to the scalar kernel engine:
  // the pre-SIMD baseline. The ratio of the two is the kernel engine's win on
  // this network; bench_kernels gates it.
  nn::Network net = nn::make_test4_network();
  util::Rng rng(9);
  net.init_weights(rng);
  nn::ExecutionContext ctx(net, nn::kernels::Kind::kScalar, nullptr);
  const nn::Tensor x = random_tensor(nn::Shape{3, 32, 32}, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.infer(x, ctx).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullInferTest4Scalar);

static void BM_FullInferBatch8Test4(benchmark::State& state) {
  // Fused batch inference: one im2col + GEMM per layer for the whole batch.
  // Items processed counts per-image MACs so images/s compares directly with
  // the single-image benches above.
  nn::Network net = nn::make_test4_network();
  util::Rng rng(9);
  net.init_weights(rng);
  nn::ExecutionContext ctx(net);
  constexpr std::size_t kBatch = 8;
  std::vector<nn::Tensor> images;
  for (std::size_t i = 0; i < kBatch; ++i) {
    images.push_back(random_tensor(nn::Shape{3, 32, 32}, 10 + i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.infer_batch(images, ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) *
                          static_cast<std::int64_t>(net.total_macs()));
}
BENCHMARK(BM_FullInferBatch8Test4);

static void BM_HlsEstimate(benchmark::State& state) {
  nn::Network net = nn::make_test4_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard()));
  }
}
BENCHMARK(BM_HlsEstimate);

static void BM_CodegenTest1(benchmark::State& state) {
  core::NetworkDescriptor d;
  d.name = "bench";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  nn::Network net = d.build_network();
  util::Rng rng(11);
  net.init_weights(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_cpp(d, net));
  }
}
BENCHMARK(BM_CodegenTest1);
