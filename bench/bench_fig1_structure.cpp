// Reproduces the paper's Fig. 1: the canonical CNN structure (alternating
// convolutional and sub-sampling layers followed by an MLP), as the textual
// layer-by-layer shape trace of the framework's shape inference, for the
// canonical example and for the four evaluation networks.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Fig. 1 reproduction: CNN structure traces ==\n");

  // The figure's example: two conv+subsampling stages, then the MLP.
  nn::Network fig1(nn::Shape{1, 28, 28}, "fig1_example");
  fig1.add_conv(4, 5, 5);
  fig1.add_max_pool(2, 2);
  fig1.add_conv(8, 3, 3);
  fig1.add_max_pool(2, 2);
  fig1.add_linear(32);
  fig1.add_activation(nn::ActKind::kTanh);
  fig1.add_linear(10);
  fig1.add_logsoftmax();
  std::fputs(fig1.structure().c_str(), stdout);
  std::printf("  parameters: %zu, MACs/forward: %zu\n\n", fig1.parameter_count(),
              fig1.total_macs());

  for (const auto& [label, descriptor] :
       std::vector<std::pair<std::string, core::NetworkDescriptor>>{
           {"Test 1/2", usps_test1_descriptor(false)},
           {"Test 3", usps_test3_descriptor()},
           {"Test 4", cifar_test4_descriptor()}}) {
    std::printf("-- %s --\n", label.c_str());
    const nn::Network net = descriptor.build_network();
    std::fputs(net.structure().c_str(), stdout);
    std::printf("  parameters: %zu, MACs/forward: %zu\n\n", net.parameter_count(),
                net.total_macs());
  }

  // Structural invariant of the figure: feature maps shrink monotonically
  // through the convolutional part.
  const nn::Network net = cifar_test4_descriptor().build_network();
  bool ok = true;
  std::size_t prev = net.input_shape().height();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::Shape& s = net.shape_after(i);
    if (s.rank() == 3) {
      ok &= s.height() <= prev;
      prev = s.height();
    }
  }
  std::printf("shape check (feature maps shrink through the conv part): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
