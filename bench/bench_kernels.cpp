// SIMD kernel-engine benchmark: what the runtime-dispatched AVX2 microkernels
// (src/nn/kernels) buy over the seed blocked-GEMM inference path, measured on
// one thread so the numbers isolate the kernels from the serving runtime.
//
//   1. Conv GEMM, per case-study conv layer. The seed path is
//      Conv2D::infer_into(x, out, col, nullptr) — im2col + the pixel-blocked
//      scalar GEMM every PR before the kernel engine shipped. The SIMD path
//      is exactly what ExecutionContext runs: weights packed once (the
//      PackCache amortizes packing across calls), then per-image im2col_pack
//      straight into packed-B panels and the fused 6x16 AVX2 GEMM epilogue.
//      Parity (<= 1e-4 relative) is checked on the outputs being timed.
//   2. Whole-network inference on the paper's Test-4 CIFAR network: seed
//      forward(), scalar-pinned infer(), avx2 infer(), and fused
//      infer_batch(8) per-image cost, plus argmax agreement.
//
// Gate (AVX2 hosts): geometric-mean conv-GEMM speedup >= 3x over the
// GEMM-dominated layers (N >= 64 output pixels) and parity holds; the
// quantized pipelines must additionally beat the float SIMD path by >= 2x
// (int8) and >= 1x (int16) on the same layers.
// On hosts without AVX2+FMA the measurements that need the engine are skipped
// and the gate passes vacuously (the scalar engine IS the seed path).
//
// Emits a human-readable table plus BENCH_kernels.json (see --out). Schema:
//   {
//     "bench": "kernels", "avx2_available": bool, "engine": "scalar"|"avx2",
//     "conv": [{"name": str, "m": int, "k": int, "n": int,
//               "seed_us": float, "simd_us": float, "speedup": float,
//               "max_rel_err": float, "int8_us": float,
//               "int8_speedup_vs_float": float, "int16_us": float,
//               "int16_speedup_vs_float": float}, ...],
//     "int8":  {"conv_speedup_vs_float_geomean": float,
//               "gate_min_speedup": 2.0, "pass": bool},
//     "int16": {"conv_speedup_vs_float_geomean": float,
//               "gate_min_speedup": 1.0, "pass": bool},
//     "conv_gemm_speedup_geomean": float,
//     "net_forward_us": float, "net_infer_scalar_us": float,
//     "net_infer_simd_us": float, "net_batch8_us_per_image": float,
//     "net_speedup": float, "batch_fusion_speedup": float,
//     "argmax_match": bool, "gate_min_speedup": 3.0, "pass": bool
//   }
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cnn2fpga.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_int.hpp"

using namespace cnn2fpga;

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-`samples` average microseconds per call of `fn`. Each sample runs
/// enough iterations (calibrated once) to amortize timer noise; min-of-means
/// is robust against scheduler preemption without needing a long run.
template <typename Fn>
double time_us(Fn&& fn, int samples) {
  fn();  // warm caches, fault pages
  auto start = Clock::now();
  fn();
  double once = std::chrono::duration<double>(Clock::now() - start).count();
  const int iters = std::max(1, static_cast<int>(5e-3 / std::max(once, 1e-9)));
  double best = 1e300;
  for (int s = 0; s < samples; ++s) {
    start = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, elapsed / iters);
  }
  return best * 1e6;
}

tensor::Tensor random_tensor(nn::Shape shape, std::uint64_t seed) {
  tensor::Tensor t(shape);
  util::Rng rng(seed);
  t.fill_uniform(rng, -1.0f, 1.0f);
  return t;
}

struct ConvCase {
  const char* name;
  std::size_t in_c, ih, iw, maps, kernel;
};

struct ConvResult {
  std::string name;
  std::size_t m = 0, k = 0, n = 0;
  double seed_us = 0.0;
  double simd_us = 0.0;
  double speedup = 0.0;
  double max_rel_err = 0.0;
  double int8_us = 0.0;   ///< quantized pipeline per call (pack + gemm)
  double int16_us = 0.0;
  double int8_speedup = 0.0;   ///< vs the float SIMD pipeline (simd_us)
  double int16_speedup = 0.0;
};

/// Seed blocked GEMM vs the packed AVX2 kernel pipeline on one conv layer.
ConvResult measure_conv(const ConvCase& c, int samples) {
  namespace ker = nn::kernels;
  nn::Conv2D conv(c.in_c, c.maps, c.kernel, c.kernel);
  util::Rng rng(1);
  conv.init_weights(rng);
  const tensor::Tensor x = random_tensor(nn::Shape{c.in_c, c.ih, c.iw}, 2);
  const nn::Shape out_shape = conv.output_shape(x.shape());
  const std::size_t oh = out_shape.height(), ow = out_shape.width();

  ConvResult r;
  r.name = c.name;
  r.m = c.maps;
  r.k = c.in_c * c.kernel * c.kernel;
  r.n = oh * ow;

  tensor::Tensor seed_out(out_shape);
  std::vector<float> col(conv.col_scratch_size(x.shape()));
  r.seed_us = time_us(
      [&] { conv.infer_into(x, seed_out, col.data(), /*fused=*/nullptr); }, samples);

  if (!ker::avx2_available()) return r;

  // Pack weights once — the engine's PackCache does this once per deploy.
  ker::PackedA wp;
  ker::pack_a(conv.weights().data(), r.m, r.k, wp);
  util::aligned_vector<float> bpack(ker::packed_b_size(r.n, r.k));
  tensor::Tensor simd_out(out_shape);
  const auto simd_once = [&] {
    ker::im2col_pack(x.data(), c.ih * c.iw, c.in_c, c.ih, c.iw, c.kernel, c.kernel, oh,
                     ow, bpack.data(), /*col0=*/0, r.n);
    ker::zero_pack_tail(bpack.data(), r.n, r.k);
    ker::gemm(wp, bpack.data(), r.n, conv.bias().data(), /*act=*/-1, simd_out.data(),
              r.n);
  };
  r.simd_us = time_us(simd_once, samples);
  r.speedup = r.seed_us / r.simd_us;

  // Quantized pipelines on the same layer: activations arrive as raw fixed
  // values (as they do between layers of the quantized runner), so the timed
  // path is the serving path — integer im2col into packed panels + the fused
  // requantizing GEMM. Weight packing is deploy-time (QuantPackCache) and is
  // excluded, matching the float measurement above.
  {
    const nn::FixedPointFormat f8 = nn::serve_precision_format(nn::ServePrecision::kInt8);
    util::aligned_vector<std::int8_t> x8(x.size());
    ker::quantize_input_s8(x.data(), x.size(), f8, x8.data());
    ker::PackedWeightsS8 w8;
    ker::pack_weights_s8(conv.weights().data(), conv.bias().data(), r.m, r.k, f8, w8);
    util::aligned_vector<std::uint8_t> b8(ker::packed_b_size_s8(r.n, r.k));
    util::aligned_vector<std::int8_t> c8(r.m * r.n);
    r.int8_us = time_us(
        [&] {
          ker::im2col_pack_s8(x8.data(), c.ih * c.iw, c.in_c, c.ih, c.iw, c.kernel,
                              c.kernel, oh, ow, b8.data(), /*col0=*/0, r.n);
          ker::finish_pack_s8(b8.data(), r.n, r.k);
          ker::gemm_s8(ker::Kind::kAvx2, w8, b8.data(), r.n, f8, /*act=*/-1, c8.data(),
                       r.n);
        },
        samples);
    r.int8_speedup = r.simd_us / r.int8_us;

    const nn::FixedPointFormat f16 = nn::serve_precision_format(nn::ServePrecision::kInt16);
    util::aligned_vector<std::int16_t> x16(x.size());
    ker::quantize_input_s16(x.data(), x.size(), f16, x16.data());
    ker::PackedWeightsS16 w16;
    ker::pack_weights_s16(conv.weights().data(), conv.bias().data(), r.m, r.k, f16, w16);
    util::aligned_vector<std::int16_t> b16(ker::packed_b_size_s16(r.n, r.k));
    util::aligned_vector<std::int16_t> c16(r.m * r.n);
    r.int16_us = time_us(
        [&] {
          ker::im2col_pack_s16(x16.data(), c.ih * c.iw, c.in_c, c.ih, c.iw, c.kernel,
                               c.kernel, oh, ow, b16.data(), /*col0=*/0, r.n);
          ker::finish_pack_s16(b16.data(), r.n, r.k);
          ker::gemm_s16(ker::Kind::kAvx2, w16, b16.data(), r.n, f16, /*act=*/-1,
                        c16.data(), r.n);
        },
        samples);
    r.int16_speedup = r.simd_us / r.int16_us;
  }

  for (std::size_t i = 0; i < seed_out.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(seed_out[i]));
    r.max_rel_err =
        std::max(r.max_rel_err, static_cast<double>(std::fabs(simd_out[i] - seed_out[i]) / scale));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  namespace ker = nn::kernels;
  std::string out_path = "BENCH_kernels.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const int samples = quick ? 3 : 7;
  const bool avx2 = ker::avx2_available();

  std::printf("SIMD kernel engine benchmark (single thread, engine: %s%s)\n",
              ker::kind_name(ker::active()), quick ? ", --quick" : "");
  std::puts("---------------------------------------------------------------------");

  // The conv layers of the paper's case studies (Sec. V): Test-1/2 USPS conv,
  // Test-3 second conv, Test-4 CIFAR convs (post-pool input sizes).
  const ConvCase cases[] = {
      {"test1_conv6_5x5_16x16", 1, 16, 16, 6, 5},
      {"test3_conv16_5x5_6x6x6", 6, 6, 6, 16, 5},
      {"test4_conv12_5x5_3x32x32", 3, 32, 32, 12, 5},
      {"test4_conv36_5x5_12x14x14", 12, 14, 14, 36, 5},
  };
  std::vector<ConvResult> conv_results;
  double log_speedup_sum = 0.0;
  double log_int8_sum = 0.0, log_int16_sum = 0.0;
  std::size_t gated = 0;
  double worst_rel_err = 0.0;
  std::puts("conv GEMM, seed blocked path vs packed AVX2 microkernel:");
  for (const ConvCase& c : cases) {
    const ConvResult r = measure_conv(c, samples);
    conv_results.push_back(r);
    if (avx2) {
      // The >= 3x gate averages the GEMM-dominated layers (N >= 64 output
      // pixels). Degenerate layers like Test-3's 2x2-output conv are reported
      // but not gated: at N=4 only 4 of 16 panel lanes are live and the call
      // is timer-overhead-bound, so the ratio measures neither engine.
      if (r.n >= 64) {
        log_speedup_sum += std::log(r.speedup);
        log_int8_sum += std::log(r.int8_speedup);
        log_int16_sum += std::log(r.int16_speedup);
        ++gated;
      }
      worst_rel_err = std::max(worst_rel_err, r.max_rel_err);
      std::printf("  %-26s M=%-3zu K=%-4zu N=%-5zu %8.2f us -> %7.2f us  (%.2fx, err %.2e)\n",
                  r.name.c_str(), r.m, r.k, r.n, r.seed_us, r.simd_us, r.speedup,
                  r.max_rel_err);
      std::printf("  %-26s int16 %7.2f us (%.2fx vs float)  int8 %7.2f us (%.2fx vs float)\n",
                  "", r.int16_us, r.int16_speedup, r.int8_us, r.int8_speedup);
    } else {
      std::printf("  %-26s M=%-3zu K=%-4zu N=%-5zu %8.2f us  (no AVX2 engine)\n",
                  r.name.c_str(), r.m, r.k, r.n, r.seed_us);
    }
  }
  const double geomean =
      avx2 && gated > 0 ? std::exp(log_speedup_sum / static_cast<double>(gated)) : 0.0;
  const double int8_geomean =
      avx2 && gated > 0 ? std::exp(log_int8_sum / static_cast<double>(gated)) : 0.0;
  const double int16_geomean =
      avx2 && gated > 0 ? std::exp(log_int16_sum / static_cast<double>(gated)) : 0.0;
  if (avx2) {
    std::printf("  geometric-mean conv GEMM speedup (N >= 64 layers): %.2fx\n", geomean);
    std::printf("  quantized vs float SIMD geomean (N >= 64 layers): int8 %.2fx, int16 %.2fx\n",
                int8_geomean, int16_geomean);
  }

  // Whole-network cost on the Test-4 CIFAR network.
  nn::Network net = nn::make_test4_network();
  util::Rng rng(9);
  net.init_weights(rng);
  const tensor::Tensor x = random_tensor(nn::Shape{3, 32, 32}, 10);
  nn::ExecutionContext scalar_ctx(net, ker::Kind::kScalar, nullptr);

  const double forward_us = time_us([&] { (void)net.forward(x, false); }, samples);
  const double infer_scalar_us =
      time_us([&] { (void)net.infer(x, scalar_ctx); }, samples);
  std::puts("Test-4 CIFAR network, one image:");
  std::printf("  forward() (seed, allocating): %9.2f us\n", forward_us);
  std::printf("  infer()   scalar engine:      %9.2f us\n", infer_scalar_us);

  double infer_simd_us = 0.0, batch_us_per_image = 0.0;
  double net_speedup = 0.0, fusion_speedup = 0.0;
  bool argmax_match = true;
  if (avx2) {
    nn::ExecutionContext simd_ctx(net, ker::Kind::kAvx2, nullptr);
    infer_simd_us = time_us([&] { (void)net.infer(x, simd_ctx); }, samples);
    constexpr std::size_t kBatch = 8;
    std::vector<tensor::Tensor> images;
    for (std::size_t i = 0; i < kBatch; ++i) {
      images.push_back(random_tensor(net.input_shape(), 20 + i));
    }
    batch_us_per_image = time_us([&] { (void)net.infer_batch(images, simd_ctx); }, samples) /
                         static_cast<double>(kBatch);
    net_speedup = infer_scalar_us / infer_simd_us;
    fusion_speedup = infer_simd_us / batch_us_per_image;
    std::printf("  infer()   avx2 engine:        %9.2f us  (%.2fx vs scalar)\n",
                infer_simd_us, net_speedup);
    std::printf("  infer_batch(8) per image:     %9.2f us  (%.2fx vs per-image avx2)\n",
                batch_us_per_image, fusion_speedup);
    for (const tensor::Tensor& image : images) {
      argmax_match = argmax_match &&
                     net.infer(image, simd_ctx).argmax() == net.infer(image, scalar_ctx).argmax();
    }
    std::printf("  argmax agreement (8 images):  %s\n", argmax_match ? "yes" : "NO");
  } else {
    std::puts("  avx2 engine unavailable on this host; SIMD sections skipped.");
  }

  constexpr double kGate = 3.0;
  constexpr double kInt8Gate = 2.0;   ///< int8 must at least halve float SIMD time
  constexpr double kInt16Gate = 1.0;  ///< int16 must not lose to float SIMD
  const bool parity_ok = worst_rel_err <= 1e-4;
  const bool int8_pass = !avx2 || int8_geomean >= kInt8Gate;
  const bool int16_pass = !avx2 || int16_geomean >= kInt16Gate;
  const bool pass =
      !avx2 || (geomean >= kGate && parity_ok && argmax_match && int8_pass && int16_pass);
  std::printf("gate: conv GEMM geomean >= %.1fx and parity <= 1e-4 -> %s\n", kGate,
              !avx2 || (geomean >= kGate && parity_ok && argmax_match) ? "PASS" : "FAIL");
  std::printf("gate: int8 >= %.1fx and int16 >= %.1fx vs float SIMD -> %s\n", kInt8Gate,
              kInt16Gate, int8_pass && int16_pass ? "PASS" : "FAIL");

  std::string json = "{\"bench\": \"kernels\", \"avx2_available\": ";
  json += avx2 ? "true" : "false";
  json += util::format(", \"engine\": \"%s\", \"conv\": [", ker::kind_name(ker::active()));
  for (std::size_t i = 0; i < conv_results.size(); ++i) {
    const ConvResult& r = conv_results[i];
    json += util::format(
        "%s{\"name\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, \"seed_us\": %.3f, "
        "\"simd_us\": %.3f, \"speedup\": %.3f, \"max_rel_err\": %.3e, "
        "\"int8_us\": %.3f, \"int8_speedup_vs_float\": %.3f, "
        "\"int16_us\": %.3f, \"int16_speedup_vs_float\": %.3f}",
        i == 0 ? "" : ", ", r.name.c_str(), r.m, r.k, r.n, r.seed_us, r.simd_us,
        r.speedup, r.max_rel_err, r.int8_us, r.int8_speedup, r.int16_us,
        r.int16_speedup);
  }
  json += util::format(
      "], \"int8\": {\"conv_speedup_vs_float_geomean\": %.3f, "
      "\"gate_min_speedup\": %.1f, \"pass\": %s}, "
      "\"int16\": {\"conv_speedup_vs_float_geomean\": %.3f, "
      "\"gate_min_speedup\": %.1f, \"pass\": %s}",
      int8_geomean, kInt8Gate, int8_pass ? "true" : "false", int16_geomean, kInt16Gate,
      int16_pass ? "true" : "false");
  json += util::format(
      ", \"conv_gemm_speedup_geomean\": %.3f, \"net_forward_us\": %.3f, "
      "\"net_infer_scalar_us\": %.3f, \"net_infer_simd_us\": %.3f, "
      "\"net_batch8_us_per_image\": %.3f, \"net_speedup\": %.3f, "
      "\"batch_fusion_speedup\": %.3f, \"argmax_match\": %s, "
      "\"gate_min_speedup\": %.1f, \"pass\": %s}",
      geomean, forward_us, infer_scalar_us, infer_simd_us, batch_us_per_image,
      net_speedup, fusion_speedup, argmax_match ? "true" : "false", kGate,
      pass ? "true" : "false");

  std::ofstream out(out_path);
  out << json << "\n";
  out.close();
  std::printf("KERNELS_JSON %s\n", json.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
