// Serving-runtime benchmark: what batching, the deployed-design registry and
// the reentrant ExecutionContext engine buy under load.
//
//   1. Predict throughput, batched vs. unbatched. C concurrent clients each
//      keep a pipeline of requests in flight against one deployed design
//      (open loop — the regime a loaded server sees). Unbatched:
//      max_batch = 1, so every image is its own accelerator invocation — a
//      blocking DMA driver round trip on the deployment hardware — and pays
//      the full queue/wake/dispatch chain on the host. Batched: max_batch = 8,
//      so concurrent requests coalesce into one scatter-gather invocation
//      that pipelines through the DATAFLOW core at the initiation interval
//      and amortizes both driver and dispatch overhead across the batch.
//      Two throughputs are reported per mode: the modeled deployed
//      accelerator (axi::BlockDesign timing, deterministic) and the host
//      functional pipeline (wall clock, scheduling-noise sensitive).
//      Every prediction is checked bit-for-bit against a sequential
//      ExecutionContext reference on the same kernel engine while measuring —
//      throughput with wrong answers is not throughput.
//   2. Worker scaling on the paper's Test-2 USPS network. With the per-design
//      execution lock gone, one design runs as many concurrent batches as the
//      executor has workers; host throughput at 1 vs. 4 workers shows it.
//      (The ratio only materializes when the machine has the cores: on boxes
//      with < 4 hardware threads it is reported but not gated.)
//   3. Closed-loop request latency, scalar engine vs SIMD engine, on the
//      Test-4 CIFAR network. Each client keeps one predict in flight; p50/p95
//      per-request latency with the design pinned to the scalar kernel engine
//      (the pre-kernel-engine serving baseline) vs the AVX2 fused-batch
//      engine. Gated: SIMD p50 must be >= 2x better where AVX2 exists.
//   4. Deploy latency, registry miss vs. hit. A miss runs the entire
//      generator pipeline (validate, codegen, tcl, HLS estimate); a hit
//      returns the resident instance.
//   5. (--overload) Overload behavior. 16 flood threads push the HTTP predict
//      handler against a queue capped at 64: sheds must answer 429 with
//      Retry-After immediately (max reject latency is gated — the accept path
//      never blocks), the admission gauge must never exceed the cap (bounded
//      memory), and post-flood throughput must recover to >= 95% of the
//      pre-flood baseline on the same runtime.
//   6. (--hetero) Heterogeneous dispatch. The host engine's saturation
//      throughput is calibrated (scalar-pinned CIFAR network, 1 worker), then
//      the same paced 2x-capacity arrival stream runs twice: once CPU-only,
//      once with the accelerator backend and the cost placer. Gated: CPU-only
//      must actually shed, the heterogeneous shed rate must be strictly lower
//      (overflow spills to the fabric instead of answering 429), at least one
//      batch must spill, and the p95 of served requests must stay inside the
//      request deadline. The strict shed-rate win requires >= 2 hardware
//      threads — the fabric's functional simulation runs on a host core, so
//      a single-thread host makes the duel zero-sum by construction.
//   7. (--sharded) Multi-process scaling through the shard router. Three
//      scalar-pinned worker processes are forked up front (fork must precede
//      any thread in this process — see shard/process.hpp): one serves as the
//      single-process baseline fleet, two as the sharded fleet. Four CIFAR
//      designs — chosen offline with the same consistent-hash ring the router
//      uses so each fleet worker is primary for exactly two — are deployed
//      through both routers, then the same closed-loop keep-alive client load
//      rotates across them against each fleet. Both measurements traverse the
//      identical router -> persistent-HTTP -> worker path, so the ratio
//      isolates what the second worker PROCESS buys. Every routed logit is
//      checked bit-for-bit against a local scalar reference. Gated: >= 1.7x
//      on hosts with >= 4 hardware threads (two 2-thread workers need the
//      cores to actually run concurrently); reported with a printed waiver
//      below that.
//   8. (--chaos) Crash-safety drill. Three SUPERVISED worker processes behind
//      a journaled router absorb rotating SIGKILLs under closed-loop load
//      (the supervisor restarts each victim on its reserved port; catalog
//      repair refills it), then the router itself is destroyed and rebuilt
//      twice from nothing but the deploy journal — once clean, once with a
//      deliberately torn tail appended to the log. Gated: every kill produces
//      a restart, the soak error rate stays <= 10% with ZERO logit
//      mismatches, the clean replay recovers all designs with zero truncation
//      events, the torn replay recovers all fully-written records and
//      REPORTS >= 1 truncation event, and every drill ends with every design
//      answering bit-exact.
//
// `--quick` shrinks the request streams for CI smoke runs.
//
// Emits a human-readable table plus one machine-readable line:
//   SERVING_JSON {...}
// and writes that same JSON object to BENCH_serving.json (override the path
// with --out <path>) so CI archives a parseable file, not a captured table.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/base64.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::NetworkDescriptor serving_descriptor(const std::string& name) {
  // Small USPS-style network: per-image execution is a few microseconds, the
  // regime where dispatch overhead — the thing batching amortizes — matters.
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

struct Throughput {
  double host_ips = 0.0;   ///< wall-clock images/s through the host pipeline
  double accel_ips = 0.0;  ///< images/s of the modeled deployed accelerator
  std::size_t mismatches = 0;  ///< predictions differing from the reference
};

/// Throughput of `clients` concurrent open-loop request streams against one
/// deployed design on `workers` executor threads, with every result verified
/// bit-for-bit against a sequential infer() on the same kernel engine.
Throughput measure_throughput(const core::NetworkDescriptor& descriptor,
                              std::size_t max_batch, std::size_t workers,
                              std::size_t clients, std::size_t per_client) {
  serve::ServeMetrics metrics;
  serve::DesignRegistry registry(4, &metrics);
  serve::Executor executor(workers);
  serve::Batcher batcher(executor, {max_batch, /*max_wait_us=*/200}, &metrics);
  const auto design = registry.deploy_random(descriptor, 1).design;

  // Per-client image plus its reference scores through a sequential
  // ExecutionContext on the same kernel engine the design pool runs
  // (scalar-pinned contexts are bit-exact with the seed forward(); avx2
  // contexts run the SIMD engine, and fused batches are bit-identical to
  // per-image infer — so serving must match this reference bit-for-bit
  // either way).
  nn::Network reference = descriptor.build_network();
  nn::deserialize_weights(reference, design->weights);
  nn::ExecutionContext ref_ctx(reference);
  std::vector<tensor::Tensor> images;
  std::vector<tensor::Tensor> expected;
  for (std::size_t i = 0; i < clients; ++i) {
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(100 + i);
    image.fill_uniform(rng, -1.0f, 1.0f);
    expected.push_back(reference.infer(image, ref_ctx));
    images.push_back(std::move(image));
  }

  // Warm-up: touch every code path once.
  batcher.predict(design, images[0]).get();

  std::vector<std::size_t> client_mismatches(clients, 0);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Open loop: submit the full stream, then drain. The batcher sees
      // sustained load instead of lock-step waves, and fulfilled futures
      // with no blocked waiter cost no wake-up.
      std::vector<std::future<serve::Prediction>> stream;
      stream.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        stream.push_back(batcher.predict(design, images[c]));
      }
      for (auto& future : stream) {
        const serve::Prediction prediction = future.get();
        const tensor::Tensor& want = expected[c];
        if (prediction.logits.size() != want.size()) {
          ++client_mismatches[c];
          continue;
        }
        for (std::size_t k = 0; k < want.size(); ++k) {
          const float ref = want[k];
          if (std::memcmp(&prediction.logits[k], &ref, sizeof(float)) != 0) {
            ++client_mismatches[c];
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = seconds_since(start);
  batcher.shutdown();
  executor.shutdown();

  Throughput out;
  out.host_ips = static_cast<double>(clients * per_client) / elapsed;
  for (const std::size_t m : client_mismatches) out.mismatches += m;
  // Modeled accelerator throughput: every image the batcher served (including
  // warm-up) over the summed per-invocation model times it recorded.
  const double accel_busy_s = static_cast<double>(metrics.accel_us.sum()) * 1e-6;
  const auto total_images = static_cast<double>(metrics.predictions.value());
  out.accel_ips = total_images / accel_busy_s;
  return out;
}

struct LatencyResult {
  double p50_us = 0.0;
  double p95_us = 0.0;
};

/// Closed-loop per-request latency through the batcher: `clients` threads each
/// keep exactly ONE predict in flight, so the percentiles measure the request
/// path itself (enqueue, batch fuse, kernel engine, future wake) rather than
/// queueing backlog. `engine` pins the kernel engine the deployed design's
/// context pool captures at deploy time — running it once with kScalar and
/// once with the SIMD engine isolates what the kernel/batch-fusion work buys
/// a latency-sensitive client.
LatencyResult measure_latency(const core::NetworkDescriptor& descriptor,
                              nn::kernels::Kind engine, std::size_t clients,
                              std::size_t per_client,
                              nn::ServePrecision precision = nn::ServePrecision::kFloat32) {
  serve::ServeMetrics metrics;
  serve::DesignRegistry registry(2, &metrics);
  serve::Executor executor(2);
  serve::Batcher batcher(executor, {/*max_batch=*/8, /*max_wait_us=*/200}, &metrics);
  std::shared_ptr<serve::DeployedDesign> design;
  {
    // The design's ExecutionContextPool resolves the active engine once, in
    // its constructor — pinning here pins every batch served on this design.
    nn::kernels::ScopedKernelOverride pin(engine);
    design = registry.deploy_random(descriptor, 1, precision).design;
  }

  std::vector<tensor::Tensor> images;
  for (std::size_t c = 0; c < clients; ++c) {
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(500 + c);
    image.fill_uniform(rng, -1.0f, 1.0f);
    images.push_back(std::move(image));
  }
  batcher.predict(design, images[0]).get();  // warm-up

  std::vector<std::vector<double>> per_thread(clients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      per_thread[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto start = Clock::now();
        batcher.predict(design, images[c]).get();
        per_thread[c].push_back(seconds_since(start) * 1e6);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  batcher.shutdown();
  executor.shutdown();

  std::vector<double> all;
  for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LatencyResult out;
  out.p50_us = all[all.size() / 2];
  out.p95_us = all[(all.size() * 95) / 100];
  return out;
}

struct OverloadResult {
  std::size_t cap = 0;            ///< max_queue_depth the runtime ran with
  std::size_t served = 0;         ///< 200s during the flood
  std::size_t shed = 0;           ///< 429s during the flood
  std::size_t retry_after = 0;    ///< 429s carrying a Retry-After header
  double max_reject_ms = 0.0;     ///< slowest 429 (shedding must not block)
  std::uint64_t queue_peak = 0;   ///< admission-gauge high water vs the cap
  double baseline_ips = 0.0;      ///< host throughput before the flood
  double recovered_ips = 0.0;     ///< host throughput after the flood
};

/// Open-loop stream of `clients` x `per_client` predicts through `runtime`'s
/// batcher; returns host images/s. Used before and after the flood so the
/// recovery ratio compares like with like on the same runtime.
double runtime_throughput(serve::ServingRuntime& runtime,
                          const std::shared_ptr<serve::DeployedDesign>& design,
                          const tensor::Tensor& image, std::size_t clients,
                          std::size_t per_client) {
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::future<serve::Prediction>> stream;
      stream.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        try {
          stream.push_back(runtime.batcher().predict(design, image));
        } catch (const serve::OverloadedError&) {
          // Closed-loop retry after a shed keeps the measurement honest.
          --i;
          std::this_thread::yield();
        }
      }
      for (auto& future : stream) future.get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  return static_cast<double>(clients * per_client) / seconds_since(start);
}

/// Flood a bounded-admission runtime with more threads than it can drain and
/// record how it sheds: every rejection must be immediate (never a blocking
/// enqueue), carry Retry-After, and leave the queue gauge under the cap. The
/// flood is closed-loop (one blocking HTTP predict per thread), so the cap is
/// set below the thread count to make the admission bound actually bind.
OverloadResult measure_overload(const core::NetworkDescriptor& descriptor, bool quick) {
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kFloodThreads = 16;

  serve::ServingConfig config;
  config.worker_threads = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.batcher.max_queue_depth = kCap;
  serve::ServingRuntime runtime(config);
  const auto design = runtime.registry().deploy_random(descriptor, 1).design;

  tensor::Tensor image{design->net.input_shape()};
  util::Rng rng(42);
  image.fill_uniform(rng, -1.0f, 1.0f);
  std::vector<std::uint8_t> raw(image.size() * sizeof(float));
  std::memcpy(raw.data(), image.data(), raw.size());
  json::Object body;
  body["design_id"] = design->id;
  body["image_base64"] = util::base64_encode(raw);
  web::HttpRequest request;
  request.body = json::Value(std::move(body)).dump();

  OverloadResult out;
  out.cap = kCap;
  const std::size_t measure_clients = 8;
  const std::size_t measure_stream = quick ? 50 : 300;
  out.baseline_ips = runtime_throughput(runtime, design, image, measure_clients,
                                        measure_stream);

  const auto flood_for = std::chrono::milliseconds(quick ? 300 : 1000);
  std::atomic<std::size_t> served{0}, shed{0}, retry_after{0}, other{0};
  std::atomic<std::uint64_t> max_reject_us{0};
  const auto flood_end = Clock::now() + flood_for;
  std::vector<std::thread> flood;
  for (std::size_t t = 0; t < kFloodThreads; ++t) {
    flood.emplace_back([&] {
      while (Clock::now() < flood_end) {
        const auto issued = Clock::now();
        const web::HttpResponse response = runtime.handle_predict(request);
        if (response.status == 200) {
          served.fetch_add(1);
        } else if (response.status == 429) {
          shed.fetch_add(1);
          if (response.headers.count("Retry-After") != 0) retry_after.fetch_add(1);
          const auto reject_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - issued)
                  .count());
          std::uint64_t seen = max_reject_us.load();
          while (reject_us > seen && !max_reject_us.compare_exchange_weak(seen, reject_us)) {
          }
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : flood) thread.join();
  if (other.load() != 0) {
    std::fprintf(stderr, "overload: %zu unexpected non-200/429 responses\n", other.load());
  }
  out.served = served.load();
  out.shed = shed.load();
  out.retry_after = retry_after.load();
  out.max_reject_ms = static_cast<double>(max_reject_us.load()) / 1000.0;
  out.queue_peak = runtime.metrics().queue_depth.peak();

  out.recovered_ips = runtime_throughput(runtime, design, image, measure_clients,
                                         measure_stream);
  runtime.shutdown();
  return out;
}

struct HeteroRun {
  std::size_t served = 0;       ///< 200s during the flood
  std::size_t shed = 0;         ///< 429s (bounded admission)
  std::size_t expired = 0;      ///< 504s (deadline propagation)
  std::size_t other = 0;        ///< anything else (must stay 0)
  double shed_rate = 0.0;       ///< shed / all responses
  double p95_ms = 0.0;          ///< p95 latency of the served requests
  std::uint64_t spilled = 0;    ///< batches placed off the raw-fastest backend
  double spill_rate = 0.0;
  std::uint64_t accel_batches = 0;  ///< batches the fabric executed
  std::uint64_t accel_images = 0;   ///< images the fabric absorbed
};

/// Paced open-loop flood: each of `threads` clients submits a
/// deadline-carrying predict every `threads / rate_per_s` seconds on an
/// absolute (phase-staggered) schedule, so the offered load is fixed by the
/// flood — not by how fast the runtime answers — and the shed rate directly
/// reflects drain capacity. Completed futures are settled opportunistically
/// between arrivals. Returns the response mix and the served-request p95.
HeteroRun flood_at_rate(serve::ServingRuntime& runtime,
                        const std::shared_ptr<serve::DeployedDesign>& design,
                        const tensor::Tensor& image, std::chrono::milliseconds duration,
                        std::size_t threads, double rate_per_s, std::size_t deadline_ms) {
  std::atomic<std::size_t> served{0}, shed{0}, expired{0}, other{0};
  std::vector<std::vector<double>> latencies_ms(threads);
  const auto start = Clock::now();
  const auto flood_end = start + duration;
  const auto interval = std::chrono::nanoseconds(
      static_cast<long long>(1e9 * static_cast<double>(threads) / rate_per_s));
  std::vector<std::thread> flood;
  for (std::size_t t = 0; t < threads; ++t) {
    flood.emplace_back([&, t] {
      std::deque<std::pair<Clock::time_point, std::future<serve::Prediction>>> pipeline;
      const auto settle_oldest = [&] {
        auto [issued, future] = std::move(pipeline.front());
        pipeline.pop_front();
        try {
          future.get();
          served.fetch_add(1);
          latencies_ms[t].push_back(seconds_since(issued) * 1e3);
        } catch (const serve::DeadlineExceededError&) {
          expired.fetch_add(1);
        } catch (...) {
          other.fetch_add(1);
        }
      };
      auto next = start + (interval * static_cast<long long>(t)) / static_cast<long long>(threads);
      while (next < flood_end) {
        std::this_thread::sleep_until(next);
        next += interval;
        const auto issued = Clock::now();
        try {
          auto future = runtime.batcher().predict(
              design, image, issued + std::chrono::milliseconds(deadline_ms));
          pipeline.emplace_back(issued, std::move(future));
        } catch (const serve::OverloadedError&) {
          shed.fetch_add(1);
        }
        while (!pipeline.empty() && pipeline.front().second.wait_for(
                                        std::chrono::seconds(0)) == std::future_status::ready) {
          settle_oldest();
        }
      }
      while (!pipeline.empty()) settle_oldest();
    });
  }
  for (std::thread& thread : flood) thread.join();

  HeteroRun out;
  out.served = served.load();
  out.shed = shed.load();
  out.expired = expired.load();
  out.other = other.load();
  const std::size_t total = out.served + out.shed + out.expired + out.other;
  out.shed_rate = total == 0 ? 0.0
                             : static_cast<double>(out.shed) / static_cast<double>(total);
  std::vector<double> all;
  for (const auto& v : latencies_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) out.p95_ms = all[(all.size() * 95) / 100];
  out.spilled = runtime.metrics().spilled.value();
  out.spill_rate = runtime.metrics().spill_rate();
  const auto& fabric =
      runtime.metrics().backend[serve::backend_index(serve::BackendId::kAccelerator)];
  out.accel_batches = fabric.batches.value();
  out.accel_images = fabric.images.value();
  return out;
}

struct HeteroComparison {
  std::size_t deadline_ms = 0;
  double cpu_capacity_per_s = 0.0;    ///< calibrated host-engine drain rate
  double accel_capacity_per_s = 0.0;  ///< fabric drain rate from the timing model
  double offered_per_s = 0.0;         ///< paced arrival rate (2x cpu capacity)
  HeteroRun cpu_only;
  HeteroRun hetero;
};

/// The paper's two-engine trade-off at serve time: the same 2x overload
/// answered by the CPU engine alone, then by CPU + simulated fabric under the
/// cost placer. The host engine's saturation throughput is calibrated first
/// (closed loop, scalar-pinned CIFAR network so a batch is ~10ms of real
/// arithmetic), then both runs receive the same paced arrival stream at 2x
/// that rate. CPU-only must shed roughly half the offer; with the placer the
/// admission queue backs up until the CPU completion cost (estimate x queue
/// pressure) crosses the fabric's modeled latency, overflow batches spill,
/// and the extra drain path shows up directly as a lower 429 rate.
HeteroComparison measure_hetero(const core::NetworkDescriptor& descriptor, bool quick) {
  HeteroComparison out;
  out.deadline_ms = 500;
  const auto calibrate_for = std::chrono::milliseconds(quick ? 300 : 600);
  const auto flood_for = std::chrono::milliseconds(quick ? 600 : 1500);
  constexpr std::size_t kFloodThreads = 8;

  const auto make_runtime = [&](bool with_accelerator, std::size_t queue_depth) {
    serve::ServingConfig config;
    config.worker_threads = 1;
    config.batcher.max_batch = 8;
    // Long enough for a full batch to coalesce at the offered rate — the
    // fabric only takes partial lanes on this deadline, so a short window
    // would drip single-image invocations into its DMA round trip.
    config.batcher.max_wait_us = 5000;
    config.batcher.max_queue_depth = queue_depth;
    config.backends.accelerator = with_accelerator;  // placer default: cost
    return std::make_unique<serve::ServingRuntime>(config);
  };
  const auto deploy_scalar = [&](serve::ServingRuntime& runtime) {
    // Pin the scalar kernel engine (the context pool bakes it in at deploy):
    // ~10ms of real arithmetic per batch keeps the host engine's drain rate
    // in a regime the modeled fabric can meaningfully supplement.
    nn::kernels::ScopedKernelOverride pin(nn::kernels::Kind::kScalar);
    return runtime.registry().deploy_random(descriptor, 1).design;
  };

  // Calibrate: closed-loop saturation throughput of the lone CPU engine, no
  // admission cap. Also read the fabric's drain rate off the timing model.
  {
    auto runtime = make_runtime(/*with_accelerator=*/false, /*queue_depth=*/0);
    const auto design = deploy_scalar(*runtime);
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(42);
    image.fill_uniform(rng, -1.0f, 1.0f);
    runtime->batcher().predict(design, image).get();  // warm-up
    std::atomic<std::size_t> drained{0};
    const auto calibrate_start = Clock::now();
    const auto calibrate_end = calibrate_start + calibrate_for;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kFloodThreads; ++t) {
      clients.emplace_back([&] {
        std::deque<std::future<serve::Prediction>> pipeline;
        while (Clock::now() < calibrate_end) {
          pipeline.push_back(runtime->batcher().predict(design, image));
          if (pipeline.size() >= 4) {
            pipeline.front().get();
            pipeline.pop_front();
            drained.fetch_add(1);
          }
        }
        for (auto& future : pipeline) {
          future.get();
          drained.fetch_add(1);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    out.cpu_capacity_per_s =
        static_cast<double>(drained.load()) / seconds_since(calibrate_start);
    out.accel_capacity_per_s = 8.0 / design->invocation_seconds(8);
    runtime->shutdown();
  }
  if (out.cpu_capacity_per_s < 50.0) out.cpu_capacity_per_s = 50.0;
  out.offered_per_s = 2.0 * out.cpu_capacity_per_s;

  // The cap is sized in host batches: deep enough that the queue-pressure
  // term crosses over to the fabric well before admission sheds, shallow
  // enough that a full queue still drains inside the deadline.
  const std::size_t queue_depth = 160;
  for (const bool with_accelerator : {false, true}) {
    auto runtime = make_runtime(with_accelerator, queue_depth);
    const auto design = deploy_scalar(*runtime);
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(42);
    image.fill_uniform(rng, -1.0f, 1.0f);
    // Settle the CPU engine's measured-latency EWMA before measuring, so
    // placement during the flood runs on real estimates instead of the
    // cold-start parity prior.
    for (int i = 0; i < 8; ++i) runtime->batcher().predict(design, image).get();
    const HeteroRun run = flood_at_rate(*runtime, design, image, flood_for, kFloodThreads,
                                        out.offered_per_s, out.deadline_ms);
    runtime->shutdown();
    (with_accelerator ? out.hetero : out.cpu_only) = run;
  }
  return out;
}

struct DeployLatency {
  double miss_us = 0.0;
  double hit_us = 0.0;
};

DeployLatency measure_deploy(std::size_t rounds) {
  serve::DesignRegistry registry(rounds + 1);
  DeployLatency out;
  for (std::size_t i = 0; i < rounds; ++i) {
    // Unique name => unique descriptor JSON => registry miss.
    const core::NetworkDescriptor descriptor =
        serving_descriptor(util::format("bench_deploy_%zu", i));
    auto start = Clock::now();
    const auto miss = registry.deploy_random(descriptor, 1);
    out.miss_us += seconds_since(start) * 1e6;
    if (miss.cache_hit) std::fprintf(stderr, "unexpected cache hit on fresh deploy\n");

    start = Clock::now();
    const auto hit = registry.deploy_random(descriptor, 1);
    out.hit_us += seconds_since(start) * 1e6;
    if (!hit.cache_hit) std::fprintf(stderr, "unexpected miss on repeat deploy\n");
  }
  out.miss_us /= static_cast<double>(rounds);
  out.hit_us /= static_cast<double>(rounds);
  return out;
}

struct ShardedResult {
  std::size_t workers = 2;         ///< worker processes in the sharded fleet
  std::size_t worker_threads = 2;  ///< executor threads per worker process
  std::size_t designs = 0;         ///< CIFAR designs deployed (target: 4)
  double baseline_ips = 0.0;       ///< closed loop through router -> 1 worker
  double sharded_ips = 0.0;        ///< closed loop through router -> 2 workers
  double scaling = 0.0;
  std::size_t mismatches = 0;        ///< non-200s + logits differing from reference
  std::uint64_t key_mismatches = 0;  ///< router key != worker design_id (must be 0)
  bool deploy_ok = true;
};

/// Forked worker body: a full serving runtime, scalar-pinned so both fleets
/// are CPU-bound on the same engine and the scaling ratio measures process
/// parallelism (and so routed logits stay bit-exact with the scalar
/// reference). Alive until the parent's control pipe reads EOF.
int shard_worker_main(int port, int shutdown_fd, bool reuse_port = false) {
  nn::kernels::ScopedKernelOverride pin(nn::kernels::Kind::kScalar);
  serve::ServingConfig config;
  config.worker_threads = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.backends.accelerator = false;
  serve::ServingRuntime runtime(config);
  web::ServerConfig server_config;
  server_config.reuse_port = reuse_port;  // supervised restart: parent holds the port
  web::HttpServer server(server_config);
  serve::install_serve_api(server, runtime);
  try {
    server.start(port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard worker on port %d failed to start: %s\n", port, e.what());
    return 1;
  }
  char byte = 0;
  while (true) {
    const ssize_t n = ::read(shutdown_fd, &byte, 1);
    if (n == 0) break;  // EOF: parent asked us to stop (or died)
    if (n < 0 && errno != EINTR) break;
  }
  server.stop();
  return 0;
}

/// Closed-loop throughput through a router: `clients` threads each keep one
/// predict in flight, rotating across the deployed designs so every fleet
/// worker sees traffic for the designs it is primary for. Every response is
/// parsed and its logits compared bit-for-bit against the local reference.
double shard_throughput(serve::shard::Router& router,
                        const std::vector<std::string>& predict_bodies,
                        const std::vector<tensor::Tensor>& expected,
                        std::size_t clients, std::size_t per_client,
                        std::size_t* mismatches) {
  std::vector<std::size_t> errs(clients, 0);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      web::HttpRequest request;
      request.method = "POST";
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t d = (c + i) % predict_bodies.size();
        request.body = predict_bodies[d];
        const web::HttpResponse response = router.handle_predict(request);
        if (response.status != 200) {
          ++errs[c];
          continue;
        }
        try {
          const auto doc = json::parse(response.body);
          const auto& logits = doc.at("logits").as_array();
          const tensor::Tensor& want = expected[d];
          if (logits.size() != want.size()) {
            ++errs[c];
            continue;
          }
          for (std::size_t k = 0; k < want.size(); ++k) {
            const float got = static_cast<float>(logits[k].as_double());
            const float ref = want[k];
            if (std::memcmp(&got, &ref, sizeof(float)) != 0) {
              ++errs[c];
              break;
            }
          }
        } catch (const std::exception&) {
          ++errs[c];  // unparsable body or missing logits: not a prediction
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = seconds_since(start);
  for (const std::size_t e : errs) *mismatches += e;
  return static_cast<double>(clients * per_client) / elapsed;
}

/// The --sharded duel: the same closed-loop CIFAR load through the shard
/// router against a 1-worker fleet and a 2-worker fleet. MUST run before this
/// process creates any thread: all three worker processes are forked first
/// (a forked copy of a multithreaded process is unusable — shard/process.hpp).
ShardedResult measure_sharded(bool quick) {
  ShardedResult out;
  constexpr std::size_t kFleet = 2;
  constexpr std::size_t kDesigns = 4;
  constexpr std::size_t kShardClients = 8;
  const std::size_t per_client = quick ? 25 : 120;

  // Fork every worker before anything else: ports[0] is the baseline fleet's
  // lone worker, ports[1..2] the sharded fleet.
  std::vector<int> ports;
  for (std::size_t i = 0; i < 1 + kFleet; ++i) {
    const int port = serve::shard::reserve_local_port();
    if (port == 0) {
      std::fprintf(stderr, "sharded: could not reserve a local port\n");
      out.deploy_ok = false;
      return out;
    }
    ports.push_back(port);
  }
  std::vector<serve::shard::WorkerProcess> procs(1 + kFleet);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (!procs[i].spawn(ports[i], [](int port, int fd) { return shard_worker_main(port, fd); })) {
      std::fprintf(stderr, "sharded: fork of worker %zu failed\n", i);
      out.deploy_ok = false;
      return out;
    }
  }
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (!serve::shard::wait_until_ready(ports[i], 30000)) {
      std::fprintf(stderr, "sharded: worker %zu on port %d did not become ready\n", i,
                   ports[i]);
      out.deploy_ok = false;
      for (auto& proc : procs) proc.stop();
      return out;
    }
  }

  // Pick four CIFAR designs whose content keys split 2+2 across the sharded
  // fleet's ring (same worker ids + vnode count the router below uses), so
  // the rotating client load keeps both workers busy instead of hashing all
  // four designs onto one.
  serve::shard::HashRing ring;
  for (std::size_t w = 0; w < kFleet; ++w) ring.add(util::format("worker-%zu", w));
  std::vector<std::string> deploy_bodies;
  std::vector<core::NetworkDescriptor> descriptors;
  std::map<std::string, std::size_t> primaries;
  for (int candidate = 0; deploy_bodies.size() < kDesigns && candidate < 64; ++candidate) {
    core::NetworkDescriptor d = cifar_test4_descriptor();
    d.name = util::format("shard_cifar_%d", candidate);
    json::Value doc = d.to_json();
    doc.as_object()["seed"] = 1;
    const std::string body = doc.dump();
    web::HttpResponse error;
    const auto key = serve::shard::compute_design_key(body, &error);
    if (!key) continue;
    if (primaries[ring.primary(*key)] >= kDesigns / kFleet) continue;
    ++primaries[ring.primary(*key)];
    deploy_bodies.push_back(body);
    descriptors.push_back(std::move(d));
  }
  out.designs = deploy_bodies.size();
  if (out.designs != kDesigns) {
    std::fprintf(stderr, "sharded: only balanced %zu of %zu designs\n", out.designs,
                 kDesigns);
    out.deploy_ok = false;
  }

  // Two fleets behind identical router plumbing; deploys regenerate the
  // design in each worker, so give them generator-pipeline headroom.
  serve::shard::RouterConfig baseline_config;
  baseline_config.replication = 1;
  baseline_config.worker.client.read_timeout_ms = 60000;
  serve::shard::Router baseline(baseline_config);
  baseline.add_worker("worker-0", "127.0.0.1", ports[0]);

  serve::shard::RouterConfig fleet_config;
  fleet_config.replication = 2;
  fleet_config.worker.client.read_timeout_ms = 60000;
  serve::shard::Router fleet(fleet_config);
  for (std::size_t w = 0; w < kFleet; ++w) {
    fleet.add_worker(util::format("worker-%zu", w), "127.0.0.1", ports[1 + w]);
  }

  // Deploy through both routers and build the local scalar reference: the
  // registry expands a seed deploy as build_network + init_weights(Rng(seed)),
  // so the same expansion here must produce bit-identical logits end to end.
  // Images travel as base64 of the raw floats — no text round trip to excuse
  // a mismatch.
  std::vector<std::string> predict_bodies;
  std::vector<tensor::Tensor> expected;
  nn::kernels::ScopedKernelOverride pin(nn::kernels::Kind::kScalar);
  for (std::size_t d = 0; d < deploy_bodies.size(); ++d) {
    web::HttpRequest request;
    request.method = "POST";
    request.body = deploy_bodies[d];
    const web::HttpResponse fleet_response = fleet.handle_deploy(request);
    const web::HttpResponse baseline_response = baseline.handle_deploy(request);
    if (fleet_response.status != 200 || baseline_response.status != 200) {
      std::fprintf(stderr, "sharded: deploy %zu failed (fleet %d, baseline %d)\n", d,
                   fleet_response.status, baseline_response.status);
      out.deploy_ok = false;
      continue;
    }
    const std::string design_id =
        json::parse(fleet_response.body).at("design_id").as_string();

    nn::Network net = descriptors[d].build_network();
    util::Rng weight_rng(1);
    net.init_weights(weight_rng);
    nn::ExecutionContext ctx(net);
    tensor::Tensor image{net.input_shape()};
    util::Rng image_rng(4000 + d);
    image.fill_uniform(image_rng, -1.0f, 1.0f);
    expected.push_back(net.infer(image, ctx));

    std::vector<std::uint8_t> raw(image.size() * sizeof(float));
    std::memcpy(raw.data(), image.data(), raw.size());
    json::Object predict;
    predict["design_id"] = design_id;
    predict["image_base64"] = util::base64_encode(raw);
    predict_bodies.push_back(json::Value(std::move(predict)).dump());
  }

  if (out.deploy_ok && !predict_bodies.empty()) {
    // Warm-up: touch every design on both fleets once (context pools, weight
    // packs, keep-alive connections) before the clock starts.
    std::size_t warm_errs = 0;
    shard_throughput(baseline, predict_bodies, expected, 1, predict_bodies.size(),
                     &warm_errs);
    shard_throughput(fleet, predict_bodies, expected, 1, predict_bodies.size(), &warm_errs);
    out.mismatches += warm_errs;

    out.baseline_ips = shard_throughput(baseline, predict_bodies, expected, kShardClients,
                                        per_client, &out.mismatches);
    out.sharded_ips = shard_throughput(fleet, predict_bodies, expected, kShardClients,
                                       per_client, &out.mismatches);
    out.scaling = out.sharded_ips / out.baseline_ips;
  }
  out.key_mismatches = fleet.key_mismatches() + baseline.key_mismatches();

  for (auto& proc : procs) proc.stop();
  return out;
}

struct ChaosResult {
  std::size_t workers = 3;        ///< supervised worker processes
  std::size_t designs = 0;        ///< designs deployed through the journaled router
  std::size_t kills = 0;          ///< SIGKILLs delivered during the soak
  std::uint64_t restarts = 0;     ///< supervisor restarts observed
  std::size_t soak_requests = 0;  ///< predicts issued while workers were dying
  std::size_t soak_errors = 0;    ///< non-200 answers during the soak
  std::size_t mismatches = 0;     ///< 200s whose logits differ from the reference
  std::size_t recovered = 0;      ///< designs a fresh router replayed from the journal
  std::uint64_t clean_truncated = 0;  ///< journal truncation events on the clean replay
  std::size_t torn_recovered = 0;     ///< designs recovered after a torn tail
  std::uint64_t torn_truncated = 0;   ///< truncation events reported for the torn tail
  bool deploy_ok = true;
  bool soak_healed = false;  ///< every design answered bit-exact after the soak
  bool ok = false;
};

/// Predicts every design once through `router`, retrying each design until it
/// answers 200 (crash repair may still be in flight) up to `deadline_ms`.
/// Returns the number of designs that never answered a bit-exact 200.
std::size_t chaos_settle(serve::shard::Router& router,
                         const std::vector<std::string>& predict_bodies,
                         const std::vector<tensor::Tensor>& expected, int deadline_ms,
                         std::size_t* mismatches) {
  std::size_t failed = 0;
  for (std::size_t d = 0; d < predict_bodies.size(); ++d) {
    const auto give_up = Clock::now() + std::chrono::milliseconds(deadline_ms);
    web::HttpRequest request;
    request.method = "POST";
    request.body = predict_bodies[d];
    bool answered = false;
    while (Clock::now() < give_up) {
      const web::HttpResponse response = router.handle_predict(request);
      if (response.status != 200) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      answered = true;
      try {
        const auto doc = json::parse(response.body);
        const auto& logits = doc.at("logits").as_array();
        const tensor::Tensor& want = expected[d];
        bool exact = logits.size() == want.size();
        for (std::size_t k = 0; exact && k < want.size(); ++k) {
          const float got = static_cast<float>(logits[k].as_double());
          const float ref = want[k];
          exact = std::memcmp(&got, &ref, sizeof(float)) == 0;
        }
        if (!exact) ++*mismatches;
      } catch (const std::exception&) {
        ++*mismatches;
      }
      break;
    }
    if (!answered) ++failed;
  }
  return failed;
}

/// The --chaos drill (see DESIGN.md "Crash recovery and durability"): a
/// journaled router over three SUPERVISED workers absorbs SIGKILLs under
/// closed-loop load, then the router itself is torn down and rebuilt from the
/// journal — twice, the second time with a deliberately torn journal tail.
/// Forks its initial workers before any thread exists; supervised RESTARTS
/// fork from a threaded process, which is exactly the production scenario the
/// supervisor is built for (worker children silence logging first so they
/// never touch a lock the fork may have captured — shard/supervisor.hpp).
ChaosResult measure_chaos(bool quick) {
  ChaosResult out;
  constexpr std::size_t kFleet = 3;
  constexpr std::size_t kDesigns = 4;
  constexpr std::size_t kClients = 4;
  const std::size_t kills_target = quick ? 2 : 4;
  const std::string journal_path = "bench_chaos_journal.log";
  std::remove(journal_path.c_str());

  // Reserve each worker's port for the whole drill, then fork the initial
  // fleet while this process is still single-threaded.
  serve::shard::SupervisorConfig supervisor_config;
  supervisor_config.backoff_initial_ms = 100;
  supervisor_config.backoff_max_ms = 500;
  supervisor_config.restart_budget = 0;  // the soak kills on purpose; no budget
  serve::shard::Supervisor supervisor(supervisor_config);
  std::vector<serve::shard::ProcessLauncher*> launchers;
  for (std::size_t i = 0; i < kFleet; ++i) {
    auto reserved = serve::shard::ReservedPort::reserve();
    if (!reserved.valid()) {
      std::fprintf(stderr, "chaos: could not reserve a local port\n");
      out.deploy_ok = false;
      return out;
    }
    auto launcher = std::make_unique<serve::shard::ProcessLauncher>(
        std::move(reserved),
        [](int port, int fd) {
          util::set_log_level(util::LogLevel::kOff);  // fork-safety: first statement
          return shard_worker_main(port, fd, /*reuse_port=*/true);
        },
        30000);
    if (!launcher->start()) {
      std::fprintf(stderr, "chaos: worker %zu did not become ready\n", i);
      out.deploy_ok = false;
      supervisor.stop_all();
      return out;
    }
    launchers.push_back(launcher.get());
    supervisor.add_slot(util::format("worker-%zu", i), std::move(launcher));
  }

  const auto make_router = [&](bool expect_journal_ok) {
    serve::shard::RouterConfig config;
    config.replication = 2;
    config.worker.client.read_timeout_ms = 60000;
    config.probe_interval_ms = 50;  // restarts and ring repair inside the soak window
    config.journal_path = journal_path;
    auto router = std::make_unique<serve::shard::Router>(config);
    (void)expect_journal_ok;
    for (std::size_t w = 0; w < kFleet; ++w) {
      router->add_worker(util::format("worker-%zu", w), "127.0.0.1", launchers[w]->port());
    }
    return router;
  };

  auto router = make_router(true);
  router->attach_supervisor(&supervisor);
  router->start_probing();

  // Deploy kDesigns tiny designs (journal-before-ack) and build the local
  // scalar reference for bit-exact checks, same recipe as the sharded duel.
  std::vector<std::string> predict_bodies;
  std::vector<tensor::Tensor> expected;
  nn::kernels::ScopedKernelOverride pin(nn::kernels::Kind::kScalar);
  for (std::size_t d = 0; d < kDesigns; ++d) {
    core::NetworkDescriptor descriptor =
        serving_descriptor(util::format("chaos_design_%zu", d));
    json::Value doc = descriptor.to_json();
    doc.as_object()["seed"] = 1;
    web::HttpRequest request;
    request.method = "POST";
    request.body = doc.dump();
    const web::HttpResponse response = router->handle_deploy(request);
    if (response.status != 200) {
      std::fprintf(stderr, "chaos: deploy %zu failed (%d)\n", d, response.status);
      out.deploy_ok = false;
      continue;
    }
    const std::string design_id = json::parse(response.body).at("design_id").as_string();

    nn::Network net = descriptor.build_network();
    util::Rng weight_rng(1);
    net.init_weights(weight_rng);
    nn::ExecutionContext ctx(net);
    tensor::Tensor image{net.input_shape()};
    util::Rng image_rng(7000 + d);
    image.fill_uniform(image_rng, -1.0f, 1.0f);
    expected.push_back(net.infer(image, ctx));

    std::vector<std::uint8_t> raw(image.size() * sizeof(float));
    std::memcpy(raw.data(), image.data(), raw.size());
    json::Object predict;
    predict["design_id"] = design_id;
    predict["image_base64"] = util::base64_encode(raw);
    predict_bodies.push_back(json::Value(std::move(predict)).dump());
  }
  out.designs = predict_bodies.size();
  if (out.designs != kDesigns) out.deploy_ok = false;

  // Soak: closed-loop clients keep predicting while the main thread SIGKILLs
  // a rotating worker and lets the supervisor resurrect it. Replication 2 of
  // 3 means one dead worker always leaves a live replica, so failover should
  // keep the error rate low (bounded by the gate below, not zero: a predict
  // already in flight INTO the dying socket is allowed to fail).
  if (out.deploy_ok) {
    std::atomic<bool> stop{false};
    std::vector<std::size_t> errs(kClients, 0);
    std::vector<std::size_t> bad(kClients, 0);
    std::vector<std::size_t> sent(kClients, 0);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        web::HttpRequest request;
        request.method = "POST";
        for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          const std::size_t d = (c + i) % predict_bodies.size();
          request.body = predict_bodies[d];
          const web::HttpResponse response = router->handle_predict(request);
          ++sent[c];
          if (response.status != 200) {
            ++errs[c];
            continue;
          }
          try {
            const auto doc = json::parse(response.body);
            const auto& logits = doc.at("logits").as_array();
            const tensor::Tensor& want = expected[d];
            bool exact = logits.size() == want.size();
            for (std::size_t k = 0; exact && k < want.size(); ++k) {
              const float got = static_cast<float>(logits[k].as_double());
              const float ref = want[k];
              exact = std::memcmp(&got, &ref, sizeof(float)) == 0;
            }
            if (!exact) ++bad[c];
          } catch (const std::exception&) {
            ++bad[c];
          }
        }
      });
    }
    for (std::size_t kill = 0; kill < kills_target; ++kill) {
      std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 300 : 600));
      launchers[kill % kFleet]->kill_now();
      ++out.kills;
      // Give the supervisor room to notice, back off, and restart before the
      // next murder; the load keeps running the whole time.
      std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 700 : 1200));
    }
    stop.store(true);
    for (std::thread& client : clients) client.join();
    for (std::size_t c = 0; c < kClients; ++c) {
      out.soak_requests += sent[c];
      out.soak_errors += errs[c];
      out.mismatches += bad[c];
    }
    // After the dust settles every design must answer bit-exact again, and
    // every kill must have produced a restart (the last one may still be in
    // backoff; the router's prober keeps ticking the supervisor while we wait).
    out.soak_healed =
        chaos_settle(*router, predict_bodies, expected, 20000, &out.mismatches) == 0;
    const auto restart_deadline = Clock::now() + std::chrono::seconds(15);
    while (supervisor.restarts() < out.kills && Clock::now() < restart_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    out.restarts = supervisor.restarts();
  }

  // Router crash drill: tear the router down, SIGKILL the whole fleet, then
  // rebuild a router from nothing but the journal. recover() replays the
  // catalog; the supervisor resurrects workers; predict-driven repair refills
  // them. Every design must come back bit-exact with zero truncation.
  if (out.deploy_ok) {
    router->stop_probing();
    router.reset();  // releases the journal before the successor replays it
    for (auto* launcher : launchers) launcher->kill_now();
    router = make_router(true);
    out.recovered = router->recover();
    out.clean_truncated = router->journal()->truncated_records();
    router->attach_supervisor(&supervisor);
    router->start_probing();
    out.soak_healed =
        out.soak_healed &&
        chaos_settle(*router, predict_bodies, expected, 30000, &out.mismatches) == 0;
  }

  // Torn-tail drill: append garbage past the last valid record and replay
  // again. Every fully-written record must survive; the cut must be REPORTED.
  if (out.deploy_ok) {
    router->stop_probing();
    router.reset();
    {
      std::ofstream tail(journal_path, std::ios::binary | std::ios::app);
      tail << "\x13\x37GARBAGE-TORN-TAIL";  // bogus length prefix + partial payload
    }
    router = make_router(false);
    out.torn_recovered = router->recover();
    out.torn_truncated = router->journal()->truncated_records();
    router->attach_supervisor(&supervisor);
    router->start_probing();
    out.soak_healed =
        out.soak_healed &&
        chaos_settle(*router, predict_bodies, expected, 30000, &out.mismatches) == 0;
  }

  if (router != nullptr) router->stop_probing();
  router.reset();
  supervisor.stop_all();
  std::remove(journal_path.c_str());

  const double error_rate =
      out.soak_requests > 0
          ? static_cast<double>(out.soak_errors) / static_cast<double>(out.soak_requests)
          : 1.0;
  out.ok = out.deploy_ok && out.designs == kDesigns && out.kills == kills_target &&
           out.restarts >= out.kills && out.mismatches == 0 && out.soak_healed &&
           out.recovered == kDesigns && out.clean_truncated == 0 &&
           out.torn_recovered == kDesigns && out.torn_truncated >= 1 &&
           error_rate <= 0.10;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool overload = false;
  bool hetero = false;
  bool sharded = false;
  bool chaos = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--overload") == 0) overload = true;
    if (std::strcmp(argv[i], "--hetero") == 0) hetero = true;
    if (std::strcmp(argv[i], "--sharded") == 0) sharded = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t kClients = 8;
  const std::size_t kPerClient = quick ? 60 : 400;
  const std::size_t kBatch = 8;
  const std::size_t kDeployRounds = quick ? 4 : 20;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf("serving runtime benchmark (%zu concurrent clients%s, %u hw threads)\n",
              kClients, quick ? ", --quick" : "", hw_threads);
  std::puts("------------------------------------------------------------------");

  // The fork-dependent sections run before ANY other section creates a thread
  // in this process (shard/process.hpp). Each one joins every thread it
  // started before returning, so they can run back to back.
  ChaosResult havoc;
  bool chaos_ok = true;
  std::string chaos_json = "false";
  if (chaos) {
    havoc = measure_chaos(quick);
    chaos_ok = havoc.ok;
    const double error_rate =
        havoc.soak_requests > 0
            ? static_cast<double>(havoc.soak_errors) / static_cast<double>(havoc.soak_requests)
            : 1.0;
    std::printf("chaos drill (%zu supervised workers, %zu journaled designs):\n",
                havoc.workers, havoc.designs);
    std::printf("  soak: %zu kills -> %llu restarts; %zu predicts, %zu errors (%.2f%%), "
                "%zu logit mismatches\n",
                havoc.kills, static_cast<unsigned long long>(havoc.restarts),
                havoc.soak_requests, havoc.soak_errors, error_rate * 100.0,
                havoc.mismatches);
    std::printf("  router rebuild from journal: %zu/%zu designs, %llu truncation events\n",
                havoc.recovered, havoc.designs,
                static_cast<unsigned long long>(havoc.clean_truncated));
    std::printf("  torn-tail rebuild: %zu/%zu designs, %llu truncation events (must "
                "be >= 1)\n",
                havoc.torn_recovered, havoc.designs,
                static_cast<unsigned long long>(havoc.torn_truncated));
    std::printf("  healed bit-exact after every drill: %s\n",
                havoc.soak_healed ? "yes" : "NO");
    chaos_json = util::format(
        "{\"workers\": %zu, \"designs\": %zu, \"kills\": %zu, \"restarts\": %llu, "
        "\"soak_requests\": %zu, \"soak_errors\": %zu, \"error_rate\": %.4f, "
        "\"mismatches\": %zu, \"recovered\": %zu, \"journal_truncated_records\": %llu, "
        "\"torn_recovered\": %zu, \"torn_truncated_records\": %llu, "
        "\"healed\": %s, \"ok\": %s}",
        havoc.workers, havoc.designs, havoc.kills,
        static_cast<unsigned long long>(havoc.restarts), havoc.soak_requests,
        havoc.soak_errors, error_rate, havoc.mismatches, havoc.recovered,
        static_cast<unsigned long long>(havoc.clean_truncated), havoc.torn_recovered,
        static_cast<unsigned long long>(havoc.torn_truncated),
        havoc.soak_healed ? "true" : "false", chaos_ok ? "true" : "false");
  }

  ShardedResult shard;
  bool sharded_ok = true;
  std::string sharded_json = "false";
  if (sharded) {
    shard = measure_sharded(quick);
    std::printf("sharded serving, Test-4 CIFAR network (%zu scalar workers x %zu threads, "
                "%zu designs, closed loop):\n",
                shard.workers, shard.worker_threads, shard.designs);
    std::printf("  router -> 1 worker process:   %7.0f images/s\n", shard.baseline_ips);
    std::printf("  router -> %zu worker processes: %7.0f images/s  (%.2fx)\n", shard.workers,
                shard.sharded_ips, shard.scaling);
    std::printf("  bit-exact routed logits: %zu mismatches; router key mismatches: %llu\n",
                shard.mismatches, static_cast<unsigned long long>(shard.key_mismatches));
    // Two 2-thread workers plus the router need the cores to overlap at all;
    // below 4 hardware threads the two fleets time-slice the same core and
    // the ratio reports scheduler behavior, not the architecture.
    const bool shard_capacity_gate = hw_threads >= 4;
    if (!shard_capacity_gate) {
      std::printf("  (%u hw thread%s: 1.7x multi-process scaling gate waived, "
                  "reported only)\n",
                  hw_threads, hw_threads == 1 ? "" : "s");
    }
    sharded_ok = shard.deploy_ok && shard.mismatches == 0 && shard.key_mismatches == 0 &&
                 (!shard_capacity_gate || shard.scaling >= 1.7);
    sharded_json = util::format(
        "{\"workers\": %zu, \"worker_threads\": %zu, \"designs\": %zu, "
        "\"baseline_images_per_s\": %.1f, \"sharded_images_per_s\": %.1f, "
        "\"scaling\": %.3f, \"capacity_gate\": %s, \"bit_exact\": %s, \"ok\": %s}",
        shard.workers, shard.worker_threads, shard.designs, shard.baseline_ips,
        shard.sharded_ips, shard.scaling, shard_capacity_gate ? "true" : "false",
        shard.mismatches == 0 && shard.key_mismatches == 0 ? "true" : "false",
        sharded_ok ? "true" : "false");
  }

  const core::NetworkDescriptor tiny = serving_descriptor("bench_serve");
  const Throughput unbatched = measure_throughput(tiny, 1, 4, kClients, kPerClient);
  const Throughput batched = measure_throughput(tiny, kBatch, 4, kClients, kPerClient);
  const double accel_speedup = batched.accel_ips / unbatched.accel_ips;
  const double host_speedup = batched.host_ips / unbatched.host_ips;
  std::puts("deployed accelerator (modeled, axi::BlockDesign timing):");
  std::printf("  unbatched: %9.0f images/s  (blocking DMA round trip per image)\n",
              unbatched.accel_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx, scatter-gather + DATAFLOW)\n", kBatch,
              batched.accel_ips, accel_speedup);
  std::puts("host functional pipeline (wall clock):");
  std::printf("  unbatched: %9.0f images/s\n", unbatched.host_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx)\n", kBatch, batched.host_ips,
              host_speedup);

  // Worker scaling on the Test-2 USPS network (heavier per-image work, so the
  // concurrent-batch engine — not dispatch overhead — dominates). max_batch=1:
  // one image per batch makes the available parallelism explicit.
  const core::NetworkDescriptor test2 = usps_test1_descriptor(/*optimize=*/true);
  const std::size_t scale_stream = quick ? 40 : 150;
  const Throughput one_worker = measure_throughput(test2, 1, 1, kClients, scale_stream);
  const Throughput four_workers = measure_throughput(test2, 1, 4, kClients, scale_stream);
  const double worker_scaling = four_workers.host_ips / one_worker.host_ips;
  std::puts("worker scaling, Test-2 USPS network (host wall clock, max_batch=1):");
  std::printf("  1 worker:  %9.0f images/s\n", one_worker.host_ips);
  std::printf("  4 workers: %9.0f images/s  (%.2fx)\n", four_workers.host_ips,
              worker_scaling);
  // Four executor threads can only outrun one where four hardware threads
  // exist; elsewhere (and in --quick runs, where the streams are too short to
  // amortize scheduling noise) the ratio is reported but not gated.
  const bool scaling_gate = hw_threads >= 4 && !quick;
  if (!scaling_gate) {
    std::printf("  (%s: 2x worker-scaling gate waived, reported only)\n",
                hw_threads < 4 ? "fewer than 4 hw threads" : "--quick");
  }
  const std::size_t mismatches = unbatched.mismatches + batched.mismatches +
                                 one_worker.mismatches + four_workers.mismatches;
  std::printf("bit-exactness vs sequential infer(): %zu mismatching values\n", mismatches);

  // Closed-loop p50 on the Test-4 CIFAR network: enough per-image arithmetic
  // (~450k MACs) that the kernel engine, not dispatch overhead, dominates the
  // request path. The scalar-pinned design is the pre-kernel-engine baseline.
  const bool have_avx2 = nn::kernels::avx2_available();
  const core::NetworkDescriptor cifar = cifar_test4_descriptor();
  const std::size_t lat_stream = quick ? 60 : 250;
  const LatencyResult scalar_lat =
      measure_latency(cifar, nn::kernels::Kind::kScalar, kClients, lat_stream);
  LatencyResult simd_lat = scalar_lat;
  LatencyResult int8_lat = scalar_lat;
  double p50_speedup = 1.0;
  double int8_p50_speedup = 1.0;
  if (have_avx2) {
    simd_lat = measure_latency(cifar, nn::kernels::Kind::kAvx2, kClients, lat_stream);
    p50_speedup = scalar_lat.p50_us / simd_lat.p50_us;
    // Same network deployed at int8: the full serving path (batcher, context
    // pool, quantized runner) in the precision a quantized deploy serves.
    int8_lat = measure_latency(cifar, nn::kernels::Kind::kAvx2, kClients, lat_stream,
                               nn::ServePrecision::kInt8);
    int8_p50_speedup = simd_lat.p50_us / int8_lat.p50_us;
  }
  std::puts("closed-loop request latency, Test-4 CIFAR network (8 clients):");
  std::printf("  scalar engine: p50 %9.1f us   p95 %9.1f us\n", scalar_lat.p50_us,
              scalar_lat.p95_us);
  if (have_avx2) {
    std::printf("  avx2 engine:   p50 %9.1f us   p95 %9.1f us  (p50 %.2fx better)\n",
                simd_lat.p50_us, simd_lat.p95_us, p50_speedup);
    std::printf("  avx2 + int8:   p50 %9.1f us   p95 %9.1f us  (p50 %.2fx vs float)\n",
                int8_lat.p50_us, int8_lat.p95_us, int8_p50_speedup);
  } else {
    std::puts("  avx2 engine:   unavailable on this host (scalar is the engine)");
  }

  const DeployLatency deploy = measure_deploy(kDeployRounds);
  const double deploy_speedup = deploy.miss_us / deploy.hit_us;
  std::printf("deploy latency      miss: %9.1f us  (full generator pipeline)\n",
              deploy.miss_us);
  std::printf("deploy latency      hit:  %9.1f us  (%.0fx faster)\n", deploy.hit_us,
              deploy_speedup);

  OverloadResult flood;
  double recovery_ratio = 1.0;
  bool overload_ok = true;
  if (overload) {
    flood = measure_overload(tiny, quick);
    recovery_ratio = flood.recovered_ips / flood.baseline_ips;
    std::printf("overload (16 flood threads, max_queue_depth=%zu):\n", flood.cap);
    std::printf("  served %zu, shed %zu (%zu with Retry-After)\n", flood.served, flood.shed,
                flood.retry_after);
    std::printf("  max 429 latency: %8.2f ms  (shedding must never block)\n",
                flood.max_reject_ms);
    std::printf("  queue depth peak: %7llu    (cap %zu — bounded memory)\n",
                static_cast<unsigned long long>(flood.queue_peak), flood.cap);
    std::printf("  throughput: baseline %9.0f -> recovered %9.0f images/s (%.3fx)\n",
                flood.baseline_ips, flood.recovered_ips, recovery_ratio);
    overload_ok = flood.shed > 0 && flood.retry_after == flood.shed &&
                  flood.max_reject_ms < 250.0 && flood.queue_peak <= flood.cap;
    // Recovery is a wall-clock ratio: only gate it where scheduling noise is
    // amortized over the full-size streams.
    if (!quick) overload_ok = overload_ok && recovery_ratio >= 0.95;
  }

  HeteroComparison duel;
  bool hetero_ok = true;
  std::string hetero_json = "false";
  if (hetero) {
    duel = measure_hetero(cifar, quick);
    std::printf("heterogeneous dispatch, Test-4 CIFAR network (scalar engine, 1 worker):\n");
    std::printf(
        "  capacity: host %.0f img/s, fabric %.0f img/s; offered %.0f img/s "
        "(2x host), deadline %zu ms\n",
        duel.cpu_capacity_per_s, duel.accel_capacity_per_s, duel.offered_per_s,
        duel.deadline_ms);
    std::printf("  cpu only:    served %6zu  shed %6zu (%.1f%%)  expired %4zu  p95 %7.1f ms\n",
                duel.cpu_only.served, duel.cpu_only.shed, duel.cpu_only.shed_rate * 100.0,
                duel.cpu_only.expired, duel.cpu_only.p95_ms);
    std::printf(
        "  cpu + accel: served %6zu  shed %6zu (%.1f%%)  expired %4zu  p95 %7.1f ms\n",
        duel.hetero.served, duel.hetero.shed, duel.hetero.shed_rate * 100.0,
        duel.hetero.expired, duel.hetero.p95_ms);
    std::printf(
        "  spilled to the fabric: %llu batches (%.1f%% of dispatches), "
        "%llu images absorbed in %llu invocations\n",
        static_cast<unsigned long long>(duel.hetero.spilled), duel.hetero.spill_rate * 100.0,
        static_cast<unsigned long long>(duel.hetero.accel_images),
        static_cast<unsigned long long>(duel.hetero.accel_batches));
    // The gates of the section header: overload must bind on the single
    // engine, the placer must turn sheds into spills, and spilling must not
    // blow the deadline. The strict shed-rate win binds only where the
    // fabric's driver thread has a hardware thread to run on: the simulated
    // accelerator computes its functional results with the same host engine
    // the CPU backend uses, so on a single-hardware-thread host that compute
    // steals exactly the capacity the model adds and the duel is zero-sum by
    // construction (same spirit as the worker-scaling gate above). The 1.15x
    // bound still catches a placer that makes overload worse.
    const bool capacity_gate = hw_threads >= 2;
    if (!capacity_gate) {
      std::puts(
          "  (1 hw thread: fabric functional simulation shares the host core; "
          "strict shed-rate gate waived)");
    }
    hetero_ok = duel.cpu_only.shed > 0 && duel.hetero.spilled > 0 &&
                duel.hetero.accel_images > 0 &&
                duel.hetero.p95_ms <= static_cast<double>(duel.deadline_ms) &&
                duel.cpu_only.other == 0 && duel.hetero.other == 0 &&
                (capacity_gate ? duel.hetero.shed_rate < duel.cpu_only.shed_rate
                               : duel.hetero.shed_rate <= duel.cpu_only.shed_rate * 1.15);
    hetero_json = util::format(
        "{\"deadline_ms\": %zu, \"cpu_capacity_per_s\": %.1f, "
        "\"accel_capacity_per_s\": %.1f, \"offered_per_s\": %.1f, "
        "\"cpu_only\": {\"served\": %zu, \"shed\": %zu, \"expired\": %zu, "
        "\"shed_rate\": %.4f, \"p95_ms\": %.2f}, "
        "\"placer\": {\"served\": %zu, \"shed\": %zu, \"expired\": %zu, "
        "\"shed_rate\": %.4f, \"p95_ms\": %.2f, \"spilled\": %llu, "
        "\"spill_rate\": %.4f, \"fabric_batches\": %llu, \"fabric_images\": %llu}, "
        "\"capacity_gate\": %s, \"ok\": %s}",
        duel.deadline_ms, duel.cpu_capacity_per_s, duel.accel_capacity_per_s,
        duel.offered_per_s, duel.cpu_only.served, duel.cpu_only.shed, duel.cpu_only.expired,
        duel.cpu_only.shed_rate, duel.cpu_only.p95_ms, duel.hetero.served, duel.hetero.shed,
        duel.hetero.expired, duel.hetero.shed_rate, duel.hetero.p95_ms,
        static_cast<unsigned long long>(duel.hetero.spilled), duel.hetero.spill_rate,
        static_cast<unsigned long long>(duel.hetero.accel_batches),
        static_cast<unsigned long long>(duel.hetero.accel_images),
        capacity_gate ? "true" : "false", hetero_ok ? "true" : "false");
  }

  const std::string json = util::format(
      "{\"bench\": \"serving\", \"clients\": %zu, \"workers\": 4, "
      "\"batch\": %zu, \"unbatched_images_per_s\": %.1f, \"batched_images_per_s\": %.1f, "
      "\"batching_speedup\": %.3f, \"host_unbatched_images_per_s\": %.1f, "
      "\"host_batched_images_per_s\": %.1f, \"host_speedup\": %.3f, "
      "\"scaling_1_worker_images_per_s\": %.1f, \"scaling_4_workers_images_per_s\": %.1f, "
      "\"worker_scaling\": %.3f, \"scaling_gate\": %s, \"hw_threads\": %u, \"bit_exact\": %s, "
      "\"engine\": \"%s\", \"avx2_available\": %s, "
      "\"latency_p50_scalar_us\": %.1f, \"latency_p95_scalar_us\": %.1f, "
      "\"latency_p50_simd_us\": %.1f, \"latency_p95_simd_us\": %.1f, "
      "\"p50_engine_speedup\": %.3f, "
      "\"latency_p50_int8_us\": %.1f, \"latency_p95_int8_us\": %.1f, "
      "\"int8_p50_speedup_vs_float\": %.3f, "
      "\"deploy_miss_us\": %.1f, \"deploy_hit_us\": %.1f, \"registry_speedup\": %.1f, "
      "\"overload\": %s, \"overload_served\": %zu, \"overload_shed\": %zu, "
      "\"overload_max_reject_ms\": %.2f, \"overload_queue_peak\": %llu, "
      "\"overload_recovery_ratio\": %.3f, \"hetero\": %s, \"sharded\": %s, "
      "\"chaos\": %s}",
      kClients, kBatch, unbatched.accel_ips, batched.accel_ips, accel_speedup,
      unbatched.host_ips, batched.host_ips, host_speedup, one_worker.host_ips,
      four_workers.host_ips, worker_scaling, scaling_gate ? "true" : "false", hw_threads,
      mismatches == 0 ? "true" : "false",
      nn::kernels::kind_name(nn::kernels::active()), have_avx2 ? "true" : "false",
      scalar_lat.p50_us, scalar_lat.p95_us, simd_lat.p50_us, simd_lat.p95_us, p50_speedup,
      int8_lat.p50_us, int8_lat.p95_us, int8_p50_speedup,
      deploy.miss_us, deploy.hit_us, deploy_speedup, overload ? "true" : "false",
      flood.served, flood.shed, flood.max_reject_ms,
      static_cast<unsigned long long>(flood.queue_peak), recovery_ratio,
      hetero_json.c_str(), sharded_json.c_str(), chaos_json.c_str());
  std::printf("SERVING_JSON %s\n", json.c_str());
  std::ofstream out_file(out_path);
  out_file << json << "\n";
  out_file.close();
  std::printf("wrote %s\n", out_path.c_str());

  // Gates. The modeled-accelerator speedup and bit-exactness are
  // deterministic. The host ratios depend on core count and scheduling: the
  // >= 2x worker-scaling requirement only binds when the machine actually has
  // >= 4 hardware threads to scale onto. The p50 engine gate binds wherever
  // the AVX2 engine exists: closed-loop latency is compute-dominated on the
  // CIFAR network, so it is stable even in --quick runs.
  bool ok = accel_speedup >= 2.0 && host_speedup >= 0.5 && mismatches == 0;
  if (scaling_gate) ok = ok && worker_scaling >= 2.0;
  if (have_avx2) ok = ok && p50_speedup >= 2.0;
  // The int8-quantized serving path must be a win over float SIMD end to end
  // (the kernel-level gate in bench_kernels demands >= 2x; at the request
  // level dispatch overhead dilutes it, so >= 1x is the floor).
  if (have_avx2) ok = ok && int8_p50_speedup >= 1.0;
  ok = ok && overload_ok && hetero_ok && sharded_ok && chaos_ok;
  return ok ? 0 : 1;
}
