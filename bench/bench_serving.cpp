// Serving-runtime benchmark: what batching and the deployed-design registry
// buy under load.
//
//   1. Predict throughput, batched vs. unbatched. C concurrent clients each
//      keep a pipeline of requests in flight against one deployed design
//      (open loop — the regime a loaded server sees). Unbatched:
//      max_batch = 1, so every image is its own accelerator invocation — a
//      blocking DMA driver round trip on the deployment hardware — and pays
//      the full queue/wake/dispatch chain on the host. Batched: max_batch = 8,
//      so concurrent requests coalesce into one scatter-gather invocation
//      that pipelines through the DATAFLOW core at the initiation interval
//      and amortizes both driver and dispatch overhead across the batch.
//      Two throughputs are reported per mode: the modeled deployed
//      accelerator (axi::BlockDesign timing, deterministic) and the host
//      functional pipeline (wall clock, scheduling-noise sensitive).
//   2. Deploy latency, registry miss vs. hit. A miss runs the entire
//      generator pipeline (validate, codegen, tcl, HLS estimate); a hit
//      returns the resident instance.
//
// Emits a human-readable table plus one machine-readable line:
//   SERVING_JSON {...}
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::NetworkDescriptor serving_descriptor(const std::string& name) {
  // Small USPS-style network: per-image execution is a few microseconds, the
  // regime where dispatch overhead — the thing batching amortizes — matters.
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

struct Throughput {
  double host_ips = 0.0;   ///< wall-clock images/s through the host pipeline
  double accel_ips = 0.0;  ///< images/s of the modeled deployed accelerator
};

/// Throughput of `clients` concurrent open-loop request streams.
Throughput measure_throughput(std::size_t max_batch, std::size_t clients,
                              std::size_t per_client) {
  serve::ServeMetrics metrics;
  serve::DesignRegistry registry(4, &metrics);
  serve::Executor executor(4);
  serve::Batcher batcher(executor, {max_batch, /*max_wait_us=*/200}, &metrics);
  const auto design = registry.deploy_random(serving_descriptor("bench_serve"), 1).design;

  std::vector<tensor::Tensor> images;
  for (std::size_t i = 0; i < clients; ++i) {
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(100 + i);
    image.fill_uniform(rng, -1.0f, 1.0f);
    images.push_back(std::move(image));
  }

  // Warm-up: touch every code path once.
  batcher.predict(design, images[0]).get();

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Open loop: submit the full stream, then drain. The batcher sees
      // sustained load instead of lock-step waves, and fulfilled futures
      // with no blocked waiter cost no wake-up.
      std::vector<std::future<serve::Prediction>> stream;
      stream.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        stream.push_back(batcher.predict(design, images[c]));
      }
      for (auto& future : stream) future.get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = seconds_since(start);
  batcher.shutdown();
  executor.shutdown();

  Throughput out;
  out.host_ips = static_cast<double>(clients * per_client) / elapsed;
  // Modeled accelerator throughput: every image the batcher served (including
  // warm-up) over the summed per-invocation model times it recorded.
  const double accel_busy_s = static_cast<double>(metrics.accel_us.sum()) * 1e-6;
  const auto total_images = static_cast<double>(metrics.predictions.value());
  out.accel_ips = total_images / accel_busy_s;
  return out;
}

struct DeployLatency {
  double miss_us = 0.0;
  double hit_us = 0.0;
};

DeployLatency measure_deploy(std::size_t rounds) {
  serve::DesignRegistry registry(rounds + 1);
  DeployLatency out;
  for (std::size_t i = 0; i < rounds; ++i) {
    // Unique name => unique descriptor JSON => registry miss.
    const core::NetworkDescriptor descriptor =
        serving_descriptor(util::format("bench_deploy_%zu", i));
    auto start = Clock::now();
    const auto miss = registry.deploy_random(descriptor, 1);
    out.miss_us += seconds_since(start) * 1e6;
    if (miss.cache_hit) std::fprintf(stderr, "unexpected cache hit on fresh deploy\n");

    start = Clock::now();
    const auto hit = registry.deploy_random(descriptor, 1);
    out.hit_us += seconds_since(start) * 1e6;
    if (!hit.cache_hit) std::fprintf(stderr, "unexpected miss on repeat deploy\n");
  }
  out.miss_us /= static_cast<double>(rounds);
  out.hit_us /= static_cast<double>(rounds);
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 400;
  constexpr std::size_t kBatch = 8;
  constexpr std::size_t kDeployRounds = 20;

  std::puts("serving runtime benchmark (4 worker threads, 8 concurrent clients)");
  std::puts("------------------------------------------------------------------");

  const Throughput unbatched = measure_throughput(1, kClients, kPerClient);
  const Throughput batched = measure_throughput(kBatch, kClients, kPerClient);
  const double accel_speedup = batched.accel_ips / unbatched.accel_ips;
  const double host_speedup = batched.host_ips / unbatched.host_ips;
  std::puts("deployed accelerator (modeled, axi::BlockDesign timing):");
  std::printf("  unbatched: %9.0f images/s  (blocking DMA round trip per image)\n",
              unbatched.accel_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx, scatter-gather + DATAFLOW)\n", kBatch,
              batched.accel_ips, accel_speedup);
  std::puts("host functional pipeline (wall clock):");
  std::printf("  unbatched: %9.0f images/s\n", unbatched.host_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx)\n", kBatch, batched.host_ips,
              host_speedup);

  const DeployLatency deploy = measure_deploy(kDeployRounds);
  const double deploy_speedup = deploy.miss_us / deploy.hit_us;
  std::printf("deploy latency      miss: %9.1f us  (full generator pipeline)\n",
              deploy.miss_us);
  std::printf("deploy latency      hit:  %9.1f us  (%.0fx faster)\n", deploy.hit_us,
              deploy_speedup);

  std::printf(
      "SERVING_JSON {\"bench\": \"serving\", \"clients\": %zu, \"workers\": 4, "
      "\"batch\": %zu, \"unbatched_images_per_s\": %.1f, \"batched_images_per_s\": %.1f, "
      "\"batching_speedup\": %.3f, \"host_unbatched_images_per_s\": %.1f, "
      "\"host_batched_images_per_s\": %.1f, \"host_speedup\": %.3f, "
      "\"deploy_miss_us\": %.1f, \"deploy_hit_us\": %.1f, \"registry_speedup\": %.1f}\n",
      kClients, kBatch, unbatched.accel_ips, batched.accel_ips, accel_speedup,
      unbatched.host_ips, batched.host_ips, host_speedup, deploy.miss_us, deploy.hit_us,
      deploy_speedup);
  // The modeled-accelerator speedup is deterministic; the host ratio depends
  // on core count and scheduling, so only sanity-check it.
  return accel_speedup >= 2.0 && host_speedup >= 0.5 ? 0 : 1;
}
