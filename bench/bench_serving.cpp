// Serving-runtime benchmark: what batching, the deployed-design registry and
// the reentrant ExecutionContext engine buy under load.
//
//   1. Predict throughput, batched vs. unbatched. C concurrent clients each
//      keep a pipeline of requests in flight against one deployed design
//      (open loop — the regime a loaded server sees). Unbatched:
//      max_batch = 1, so every image is its own accelerator invocation — a
//      blocking DMA driver round trip on the deployment hardware — and pays
//      the full queue/wake/dispatch chain on the host. Batched: max_batch = 8,
//      so concurrent requests coalesce into one scatter-gather invocation
//      that pipelines through the DATAFLOW core at the initiation interval
//      and amortizes both driver and dispatch overhead across the batch.
//      Two throughputs are reported per mode: the modeled deployed
//      accelerator (axi::BlockDesign timing, deterministic) and the host
//      functional pipeline (wall clock, scheduling-noise sensitive).
//      Every prediction is checked bit-for-bit against the seed forward()
//      reference while measuring — throughput with wrong answers is not
//      throughput.
//   2. Worker scaling on the paper's Test-2 USPS network. With the per-design
//      execution lock gone, one design runs as many concurrent batches as the
//      executor has workers; host throughput at 1 vs. 4 workers shows it.
//      (The ratio only materializes when the machine has the cores: on boxes
//      with < 4 hardware threads it is reported but not gated.)
//   3. Deploy latency, registry miss vs. hit. A miss runs the entire
//      generator pipeline (validate, codegen, tcl, HLS estimate); a hit
//      returns the resident instance.
//
// `--quick` shrinks the request streams for CI smoke runs.
//
// Emits a human-readable table plus one machine-readable line:
//   SERVING_JSON {...}
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::NetworkDescriptor serving_descriptor(const std::string& name) {
  // Small USPS-style network: per-image execution is a few microseconds, the
  // regime where dispatch overhead — the thing batching amortizes — matters.
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.optimize = true;
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}

struct Throughput {
  double host_ips = 0.0;   ///< wall-clock images/s through the host pipeline
  double accel_ips = 0.0;  ///< images/s of the modeled deployed accelerator
  std::size_t mismatches = 0;  ///< predictions differing from the reference
};

/// Throughput of `clients` concurrent open-loop request streams against one
/// deployed design on `workers` executor threads, with every result verified
/// bit-for-bit against the seed forward() path.
Throughput measure_throughput(const core::NetworkDescriptor& descriptor,
                              std::size_t max_batch, std::size_t workers,
                              std::size_t clients, std::size_t per_client) {
  serve::ServeMetrics metrics;
  serve::DesignRegistry registry(4, &metrics);
  serve::Executor executor(workers);
  serve::Batcher batcher(executor, {max_batch, /*max_wait_us=*/200}, &metrics);
  const auto design = registry.deploy_random(descriptor, 1).design;

  // Per-client image plus its reference scores through the mutable seed path.
  nn::Network reference = descriptor.build_network();
  nn::deserialize_weights(reference, design->weights);
  std::vector<tensor::Tensor> images;
  std::vector<tensor::Tensor> expected;
  for (std::size_t i = 0; i < clients; ++i) {
    tensor::Tensor image{design->net.input_shape()};
    util::Rng rng(100 + i);
    image.fill_uniform(rng, -1.0f, 1.0f);
    expected.push_back(reference.forward(image, /*train=*/false));
    images.push_back(std::move(image));
  }

  // Warm-up: touch every code path once.
  batcher.predict(design, images[0]).get();

  std::vector<std::size_t> client_mismatches(clients, 0);
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Open loop: submit the full stream, then drain. The batcher sees
      // sustained load instead of lock-step waves, and fulfilled futures
      // with no blocked waiter cost no wake-up.
      std::vector<std::future<serve::Prediction>> stream;
      stream.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        stream.push_back(batcher.predict(design, images[c]));
      }
      for (auto& future : stream) {
        const serve::Prediction prediction = future.get();
        const tensor::Tensor& want = expected[c];
        if (prediction.logits.size() != want.size()) {
          ++client_mismatches[c];
          continue;
        }
        for (std::size_t k = 0; k < want.size(); ++k) {
          const float ref = want[k];
          if (std::memcmp(&prediction.logits[k], &ref, sizeof(float)) != 0) {
            ++client_mismatches[c];
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = seconds_since(start);
  batcher.shutdown();
  executor.shutdown();

  Throughput out;
  out.host_ips = static_cast<double>(clients * per_client) / elapsed;
  for (const std::size_t m : client_mismatches) out.mismatches += m;
  // Modeled accelerator throughput: every image the batcher served (including
  // warm-up) over the summed per-invocation model times it recorded.
  const double accel_busy_s = static_cast<double>(metrics.accel_us.sum()) * 1e-6;
  const auto total_images = static_cast<double>(metrics.predictions.value());
  out.accel_ips = total_images / accel_busy_s;
  return out;
}

struct DeployLatency {
  double miss_us = 0.0;
  double hit_us = 0.0;
};

DeployLatency measure_deploy(std::size_t rounds) {
  serve::DesignRegistry registry(rounds + 1);
  DeployLatency out;
  for (std::size_t i = 0; i < rounds; ++i) {
    // Unique name => unique descriptor JSON => registry miss.
    const core::NetworkDescriptor descriptor =
        serving_descriptor(util::format("bench_deploy_%zu", i));
    auto start = Clock::now();
    const auto miss = registry.deploy_random(descriptor, 1);
    out.miss_us += seconds_since(start) * 1e6;
    if (miss.cache_hit) std::fprintf(stderr, "unexpected cache hit on fresh deploy\n");

    start = Clock::now();
    const auto hit = registry.deploy_random(descriptor, 1);
    out.hit_us += seconds_since(start) * 1e6;
    if (!hit.cache_hit) std::fprintf(stderr, "unexpected miss on repeat deploy\n");
  }
  out.miss_us /= static_cast<double>(rounds);
  out.hit_us /= static_cast<double>(rounds);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kClients = 8;
  const std::size_t kPerClient = quick ? 60 : 400;
  const std::size_t kBatch = 8;
  const std::size_t kDeployRounds = quick ? 4 : 20;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf("serving runtime benchmark (%zu concurrent clients%s, %u hw threads)\n",
              kClients, quick ? ", --quick" : "", hw_threads);
  std::puts("------------------------------------------------------------------");

  const core::NetworkDescriptor tiny = serving_descriptor("bench_serve");
  const Throughput unbatched = measure_throughput(tiny, 1, 4, kClients, kPerClient);
  const Throughput batched = measure_throughput(tiny, kBatch, 4, kClients, kPerClient);
  const double accel_speedup = batched.accel_ips / unbatched.accel_ips;
  const double host_speedup = batched.host_ips / unbatched.host_ips;
  std::puts("deployed accelerator (modeled, axi::BlockDesign timing):");
  std::printf("  unbatched: %9.0f images/s  (blocking DMA round trip per image)\n",
              unbatched.accel_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx, scatter-gather + DATAFLOW)\n", kBatch,
              batched.accel_ips, accel_speedup);
  std::puts("host functional pipeline (wall clock):");
  std::printf("  unbatched: %9.0f images/s\n", unbatched.host_ips);
  std::printf("  batch=%zu:  %9.0f images/s  (%.2fx)\n", kBatch, batched.host_ips,
              host_speedup);

  // Worker scaling on the Test-2 USPS network (heavier per-image work, so the
  // concurrent-batch engine — not dispatch overhead — dominates). max_batch=1:
  // one image per batch makes the available parallelism explicit.
  const core::NetworkDescriptor test2 = usps_test1_descriptor(/*optimize=*/true);
  const std::size_t scale_stream = quick ? 40 : 150;
  const Throughput one_worker = measure_throughput(test2, 1, 1, kClients, scale_stream);
  const Throughput four_workers = measure_throughput(test2, 1, 4, kClients, scale_stream);
  const double worker_scaling = four_workers.host_ips / one_worker.host_ips;
  std::puts("worker scaling, Test-2 USPS network (host wall clock, max_batch=1):");
  std::printf("  1 worker:  %9.0f images/s\n", one_worker.host_ips);
  std::printf("  4 workers: %9.0f images/s  (%.2fx)\n", four_workers.host_ips,
              worker_scaling);
  const std::size_t mismatches = unbatched.mismatches + batched.mismatches +
                                 one_worker.mismatches + four_workers.mismatches;
  std::printf("bit-exactness vs seed forward(): %zu mismatching values\n", mismatches);

  const DeployLatency deploy = measure_deploy(kDeployRounds);
  const double deploy_speedup = deploy.miss_us / deploy.hit_us;
  std::printf("deploy latency      miss: %9.1f us  (full generator pipeline)\n",
              deploy.miss_us);
  std::printf("deploy latency      hit:  %9.1f us  (%.0fx faster)\n", deploy.hit_us,
              deploy_speedup);

  std::printf(
      "SERVING_JSON {\"bench\": \"serving\", \"clients\": %zu, \"workers\": 4, "
      "\"batch\": %zu, \"unbatched_images_per_s\": %.1f, \"batched_images_per_s\": %.1f, "
      "\"batching_speedup\": %.3f, \"host_unbatched_images_per_s\": %.1f, "
      "\"host_batched_images_per_s\": %.1f, \"host_speedup\": %.3f, "
      "\"scaling_1_worker_images_per_s\": %.1f, \"scaling_4_workers_images_per_s\": %.1f, "
      "\"worker_scaling\": %.3f, \"hw_threads\": %u, \"bit_exact\": %s, "
      "\"deploy_miss_us\": %.1f, \"deploy_hit_us\": %.1f, \"registry_speedup\": %.1f}\n",
      kClients, kBatch, unbatched.accel_ips, batched.accel_ips, accel_speedup,
      unbatched.host_ips, batched.host_ips, host_speedup, one_worker.host_ips,
      four_workers.host_ips, worker_scaling, hw_threads, mismatches == 0 ? "true" : "false",
      deploy.miss_us, deploy.hit_us, deploy_speedup);

  // Gates. The modeled-accelerator speedup and bit-exactness are
  // deterministic. The host ratios depend on core count and scheduling: the
  // >= 2x worker-scaling requirement only binds when the machine actually has
  // >= 4 hardware threads to scale onto.
  bool ok = accel_speedup >= 2.0 && host_speedup >= 0.5 && mismatches == 0;
  if (hw_threads >= 4 && !quick) ok = ok && worker_scaling >= 2.0;
  return ok ? 0 : 1;
}
