// Reproduces the paper's Fig. 3: the framework workflow (GUI posts a JSON
// descriptor -> back-end wrappers emit the C++ source and tcl scripts ->
// Vivado HLS/Vivado synthesis). Each stage is timed for the four evaluation
// networks, including the web-API transport, so the "automation" claim is
// backed by an end-to-end latency budget.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {
double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

int main() {
  std::puts("== Fig. 3 reproduction: framework workflow stage timing ==\n");

  util::Table table({"network", "parse+validate", "build net", "emit C++", "emit tcl",
                     "HLS estimate", "C++ bytes", "total"});

  bool ok = true;
  for (const auto& [label, descriptor] :
       std::vector<std::pair<std::string, core::NetworkDescriptor>>{
           {"usps_test1 (naive)", usps_test1_descriptor(false)},
           {"usps_test2 (opt)", usps_test1_descriptor(true)},
           {"usps_test3", usps_test3_descriptor()},
           {"cifar10_test4", cifar_test4_descriptor()}}) {
    const std::string json_text = descriptor.to_json().dump(true);

    auto t0 = std::chrono::steady_clock::now();
    const core::NetworkDescriptor parsed = core::NetworkDescriptor::from_json_text(json_text);
    const double t_parse = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    nn::Network net = parsed.build_network();
    util::Rng rng(1);
    net.init_weights(rng);
    const double t_build = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const std::string cpp = core::generate_cpp(parsed, net);
    const double t_cpp = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const auto tcl = core::generate_tcl_files(parsed, net);
    const double t_tcl = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const hls::DirectiveSet directives =
        parsed.optimize ? hls::DirectiveSet::optimized() : hls::DirectiveSet::naive();
    const hls::HlsReport report = hls::estimate(net, directives, hls::zedboard());
    const double t_hls = ms_since(t0);

    table.add_row({label, util::format("%.2fms", t_parse), util::format("%.2fms", t_build),
                   util::format("%.2fms", t_cpp), util::format("%.2fms", t_tcl),
                   util::format("%.2fms", t_hls), util::format("%zu", cpp.size()),
                   util::format("%.2fms", t_parse + t_build + t_cpp + t_tcl + t_hls)});

    ok &= !cpp.empty() && tcl.size() == 3 && report.latency_cycles > 0;
  }
  std::fputs(table.render().c_str(), stdout);

  // Web-API leg of the workflow (the GUI -> back-end transport of Fig. 3).
  web::HttpServer server;
  web::install_api(server);
  const int port = server.start(0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = web::http_request("127.0.0.1", port, "POST", "/api/v1/generate",
                                          usps_test1_descriptor(true).to_json().dump());
  const double t_api = ms_since(t0);
  server.stop();
  ok &= response.has_value() && response->status == 200;
  std::printf("\nweb API round trip (POST /api/v1/generate, usps_test2): %.2f ms -> HTTP %d\n",
              t_api, response ? response->status : -1);

  std::printf("\nshape check (all four networks generate end-to-end): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
