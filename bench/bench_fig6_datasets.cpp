// Reproduces the paper's Fig. 6: example images from the two datasets
// (USPS handwritten digits, CIFAR-10). Renders samples of the synthetic
// stand-ins as ASCII art and reports the corpus statistics that matter for
// the experiments (class balance, pixel moments, inter-class separability).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {
/// Mean inter-class distance between per-class mean images (separability).
double interclass_distance(const data::Dataset& ds) {
  std::vector<nn::Tensor> means(ds.num_classes, nn::Tensor(ds.image_shape));
  std::vector<std::size_t> counts(ds.num_classes, 0);
  for (const nn::Sample& s : ds.samples) {
    for (std::size_t i = 0; i < s.image.size(); ++i) means[s.label][i] += s.image[i];
    ++counts[s.label];
  }
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    for (std::size_t i = 0; i < means[c].size(); ++i) {
      means[c][i] /= static_cast<float>(counts[c]);
    }
  }
  double total = 0.0;
  int pairs = 0;
  for (std::size_t a = 0; a < ds.num_classes; ++a) {
    for (std::size_t b = a + 1; b < ds.num_classes; ++b) {
      double d2 = 0.0;
      for (std::size_t i = 0; i < means[a].size(); ++i) {
        const double diff = means[a][i] - means[b][i];
        d2 += diff * diff;
      }
      total += std::sqrt(d2);
      ++pairs;
    }
  }
  return total / pairs;
}
}  // namespace

int main() {
  std::puts("== Fig. 6 reproduction: dataset samples ==\n");

  data::UspsConfig usps_config;
  usps_config.samples_per_class = 20;
  const data::Dataset usps = data::generate_usps(usps_config);
  std::puts("(a) synthetic USPS digits (16x16 grayscale):");
  for (std::size_t digit : {0u, 3u, 7u}) {
    std::printf("  digit %zu:\n%s\n", digit,
                util::indent(data::ascii_render(usps.samples[digit].image), 4).c_str());
  }
  const auto [usps_mean, usps_std] = usps.pixel_stats();
  std::printf("  samples: %zu, classes: %zu, pixel mean %.3f stddev %.3f\n", usps.size(),
              usps.num_classes, usps_mean, usps_std);
  const double usps_sep = interclass_distance(usps);
  std::printf("  mean inter-class distance: %.2f\n\n", usps_sep);

  data::CifarConfig cifar_config;
  cifar_config.samples_per_class = 20;
  const data::Dataset cifar = data::generate_cifar(cifar_config);
  std::puts("(b) synthetic CIFAR-10 (32x32 RGB, channel-averaged render):");
  for (std::size_t cls : {0u, 5u}) {
    std::printf("  class %zu:\n%s\n", cls,
                util::indent(data::ascii_render(cifar.samples[cls].image), 4).c_str());
  }
  const auto [cifar_mean, cifar_std] = cifar.pixel_stats();
  std::printf("  samples: %zu, classes: %zu, pixel mean %.3f stddev %.3f\n", cifar.size(),
              cifar.num_classes, cifar_mean, cifar_std);
  const double cifar_sep = interclass_distance(cifar);
  std::printf("  mean inter-class distance: %.2f\n", cifar_sep);

  const auto usps_hist = usps.class_histogram();
  const auto cifar_hist = cifar.class_histogram();
  bool balanced = true;
  for (std::size_t c = 0; c < 10; ++c) {
    balanced &= usps_hist[c] == usps_hist[0] && cifar_hist[c] == cifar_hist[0];
  }
  const bool ok = balanced && usps_sep > 1.0 && cifar_sep > 1.0;
  std::printf("\nshape check (balanced classes, separable class means): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
