// Reproduces the paper's Table II: FPGA resource usage of the four designs on
// the Zedboard's XC7Z020 (FF 106400, LUT 53200, Memory LUT 17400, BRAM 140,
// DSP 220). Utilization comes from the HLS simulator's resource binder.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {
hls::HlsReport report_for(const core::NetworkDescriptor& descriptor, std::uint64_t seed) {
  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);  // resources are weight-value independent (paper Sec. IV)
  const hls::DirectiveSet directives =
      descriptor.optimize ? hls::DirectiveSet::optimized() : hls::DirectiveSet::naive();
  return hls::estimate(net, directives, hls::zedboard());
}
}  // namespace

int main() {
  std::puts("== Table II reproduction: FPGA resources usage (Zedboard XC7Z020) ==\n");

  const std::vector<std::pair<std::string, core::NetworkDescriptor>> cases = {
      {"Test 1", usps_test1_descriptor(false)},
      {"Test 2", usps_test1_descriptor(true)},
      {"Test 3", usps_test3_descriptor()},
      {"Test 4", cifar_test4_descriptor()},
  };

  util::Table table({"Test", "Flip-Flops (106400)", "LUT (53200)", "Memory LUT (17400)",
                     "BRAM (140)", "DSP Slices (220)"});
  std::vector<hls::HlsReport> reports;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const hls::HlsReport report = report_for(cases[i].second, i + 1);
    reports.push_back(report);
    table.add_row({cases[i].first, pct(report.util.ff), pct(report.util.lut),
                   pct(report.util.lutram), pct(report.util.bram), pct(report.util.dsp)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\npaper Table II reference:");
  std::puts("  Test 1  15.86%   2.56%   2.56%   6.43%  41.82%");
  std::puts("  Test 2   8.86%  17.18%   3.38%   7.14%  44.09%");
  std::puts("  Test 3   9.32%  18.10%   3.06%   9.29%  46.36%");
  std::puts("  Test 4  10.39%  20.25%   3.13%  76.07%  48.64%");

  std::puts("\nabsolute usage (binder output):");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const hls::ResourceUsage& u = reports[i].usage;
    std::printf("  %s: FF %llu, LUT %llu, MemLUT %llu, BRAM18K %llu, DSP %llu, fits=%s\n",
                cases[i].first.c_str(), (unsigned long long)u.ff, (unsigned long long)u.lut,
                (unsigned long long)u.lutram, (unsigned long long)u.bram18,
                (unsigned long long)u.dsp, reports[i].fits() ? "yes" : "NO");
  }

  // Shape checks from the paper's discussion:
  bool ok = true;
  // DSP is the dominant resource for the small USPS networks...
  for (int i = 0; i < 3; ++i) {
    ok &= reports[i].util.dsp > reports[i].util.lut;
    ok &= reports[i].util.dsp > reports[i].util.bram;
  }
  // ...optimization raises LUT usage markedly (Test 1 -> Test 2)...
  ok &= reports[1].util.lut > 2.0 * reports[0].util.lut;
  // ...and the CIFAR network saturates BRAM (76% in the paper).
  ok &= reports[3].util.bram > reports[3].util.dsp;
  ok &= reports[3].util.bram > 0.4 && reports[3].util.bram <= 1.0;
  // Everything still fits the Zedboard, leaving "room for bigger networks".
  for (const auto& report : reports) ok &= report.fits();
  std::printf("\nshape checks (DSP-dominant small nets, LUT jump with directives, "
              "BRAM saturation on CIFAR): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
