// Weights-placement ablation: hard-coded ROMs (the paper's Sec. IV-A choice,
// "included the hard-coded weights") vs start-up streaming (the off-chip
// parameter style of the related-work accelerators [7][8]).
//
// Trade-off surfaced per network: generated source size (weight literals
// dominate the hard-coded file), one-time upload cost, BRAM (identical tiles,
// ROM vs RAM), and the operational difference — a streamed design accepts new
// weights without re-running synthesis.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Weights-mode ablation: hard-coded ROM vs start-up streaming ==\n");

  util::Table table({"network", "mode", "C++ bytes", "params", "upload (cyc)",
                     "BRAM18K", "latency (cyc)"});

  bool ok = true;
  for (const auto& [label, make_descriptor] :
       std::vector<std::pair<std::string, core::NetworkDescriptor>>{
           {"usps_test1", usps_test1_descriptor(true)},
           {"usps_test3", usps_test3_descriptor()},
           {"cifar10_test4", cifar_test4_descriptor()}}) {
    std::size_t hardcoded_bytes = 0, streamed_bytes = 0;
    std::uint64_t hardcoded_bram = 0, streamed_bram = 0;
    for (const bool streamed : {false, true}) {
      core::NetworkDescriptor d = make_descriptor;
      d.streamed_weights = streamed;
      const core::GeneratedDesign design =
          core::Framework::generate_with_random_weights(d, 1);
      nn::Network net = d.build_network();
      table.add_row({label, streamed ? "streamed" : "hard-coded",
                     util::format("%zu", design.cpp_source.size()),
                     util::format("%zu", net.parameter_count()),
                     util::format("%llu", (unsigned long long)design.hls_report
                                      .weight_load_cycles),
                     util::format("%llu", (unsigned long long)design.hls_report.usage.bram18),
                     util::format("%llu",
                                  (unsigned long long)design.hls_report.latency_cycles)});
      if (streamed) {
        streamed_bytes = design.cpp_source.size();
        streamed_bram = design.hls_report.usage.bram18;
        ok &= design.hls_report.weight_load_cycles >= net.parameter_count();
      } else {
        hardcoded_bytes = design.cpp_source.size();
        hardcoded_bram = design.hls_report.usage.bram18;
        ok &= design.hls_report.weight_load_cycles == 0;
      }
    }
    ok &= streamed_bytes < hardcoded_bytes;
    ok &= streamed_bram == hardcoded_bram;
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\ntakeaway: streaming removes the weight literals from the source (and the\n"
            "re-synthesis per retrain) at the cost of a one-cycle-per-parameter upload;\n"
            "BRAM is unchanged because the tiles merely switch from ROM to RAM.");
  std::printf("shape check (smaller source, same BRAM, upload >= params): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
