// Reproduces the paper's Fig. 4: the convolutional-layer configuration
// options of the GUI ("Feature maps out", kernel dimensions, integrated
// max-pooling). The bench sweeps those options on the Test-1 input and shows
// how each choice propagates to output shapes, latency and resources — the
// design-space view a user of the web application navigates.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Fig. 4 reproduction: convolutional layer option sweep (16x16 input) ==\n");

  util::Table table({"feature maps out", "kernel", "max-pool", "conv out", "latency (cyc)",
                     "DSP%", "BRAM%", "valid"});

  bool ok = true;
  std::size_t rows_valid = 0;
  for (std::size_t maps : {2u, 6u, 12u, 24u}) {
    for (std::size_t kernel : {3u, 5u, 7u, 17u}) {  // 17 exceeds the input: invalid
      for (bool pool : {false, true}) {
        core::NetworkDescriptor d = usps_test1_descriptor(true);
        d.name = "sweep";
        d.layers[0].conv.feature_maps_out = maps;
        d.layers[0].conv.kernel_h = d.layers[0].conv.kernel_w = kernel;
        if (!pool) d.layers[0].conv.pool.reset();

        std::string conv_out = "-", latency = "-", dsp = "-", bram = "-";
        bool valid = true;
        try {
          nn::Network net = d.build_network();
          util::Rng rng(1);
          net.init_weights(rng);
          conv_out = net.shape_after(0).to_string();
          const hls::HlsReport report =
              hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
          latency = util::format("%llu", (unsigned long long)report.latency_cycles);
          dsp = pct(report.util.dsp);
          bram = pct(report.util.bram);
          ++rows_valid;
        } catch (const core::DescriptorError&) {
          valid = false;
        }
        // A 17x17 kernel on 16x16 must be rejected; everything else accepted.
        ok &= valid == (kernel <= 16);
        table.add_row({util::format("%zu", maps), util::format("%zux%zu", kernel, kernel),
                       pool ? "2x2 step 2" : "off", conv_out, latency, dsp, bram,
                       valid ? "yes" : "REJECTED"});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%zu valid configurations explored\n", rows_valid);
  std::printf("shape check (infeasible kernels rejected, the rest synthesize): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
