// Reproduces the paper's Fig. 5: the Zynq block design (ZYNQ7 PS, AXI DMA,
// two AXI Interconnects, Processor System Reset, CNN IP core). A batch of
// images is streamed through the simulated fabric and the per-block
// occupancy, DMA throughput and blocking-vs-streaming driver modes are
// reported.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

int main() {
  std::puts("== Fig. 5 reproduction: block design occupancy ==\n");

  const core::NetworkDescriptor d = usps_test1_descriptor(true);
  nn::Network net = d.build_network();
  util::Rng rng(5);
  net.init_weights(rng);

  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());

  const std::size_t image_count = 200;
  std::vector<nn::Tensor> images;
  for (const nn::Sample& sample : usps_test_set(image_count)) images.push_back(sample.image);

  const axi::BatchResult blocking = bd.classify_batch(images, /*streaming=*/false);
  std::printf("blocking driver : %zu images in %.3f ms (%.1f us/image)\n", blocking.images,
              blocking.seconds * 1e3, blocking.seconds * 1e6 / image_count);

  axi::BlockDesign bd_stream(net, hls::DirectiveSet::optimized(), hls::zedboard());
  const axi::BatchResult streaming = bd_stream.classify_batch(images, /*streaming=*/true);
  std::printf("streaming driver: %zu images in %.3f ms (%.1f us/image)\n\n", streaming.images,
              streaming.seconds * 1e3, streaming.seconds * 1e6 / image_count);

  std::puts("per-block occupancy (blocking run):");
  std::fputs(bd.occupancy_report().c_str(), stdout);

  // DMA throughput at the fabric clock.
  const auto& mm2s = bd.dma().mm2s_stats();
  const double mm2s_mb_s = mm2s.cycles > 0
                               ? (static_cast<double>(mm2s.words) * 4.0) /
                                     (static_cast<double>(mm2s.cycles) / 100e6) / 1e6
                               : 0.0;
  std::printf("\nMM2S payload throughput: %.1f MB/s (theoretical 32-bit @100MHz: 400 MB/s)\n",
              mm2s_mb_s);

  bool ok = blocking.failures == 0 && streaming.failures == 0;
  ok &= blocking.predictions == streaming.predictions;
  ok &= streaming.seconds < blocking.seconds;  // DATAFLOW overlap pays off
  ok &= bd.dma().mm2s_stats().words == image_count * 256;
  ok &= bd.dma().s2mm_stats().words == image_count * 11;  // 10 scores + index
  ok &= bd.ip_core().invocations() == image_count;
  std::printf("\nshape check (lossless fabric, streaming faster, word accounting): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
