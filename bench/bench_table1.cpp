// Reproduces the paper's Table I: "Hardware implementation vs. software one".
//
// For each of the four case studies the harness:
//   1. obtains the trained network (T1-T3: short SGD on synthetic USPS;
//      T4: random weights, exactly as the paper does);
//   2. evaluates the prediction error of the software implementation and of
//      the simulated hardware (Fig. 5 block design) on the test set
//      (1000 USPS / 10000 CIFAR images, the paper's test-set sizes);
//   3. takes the software execution time from the Cortex-A9 model and the
//      hardware execution time from the HLS latency report plus the blocking
//      DMA driver overhead (the paper's measurement loop);
//   4. derives power from the power model and energy = P * t.
//
// Paper reference rows are printed next to the measured ones; shapes (who
// wins, crossovers) are what is reproduced — see EXPERIMENTS.md.
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {

struct Row {
  std::string test, dataset;
  float sw_error, hw_error;
  double sw_time, hw_time, speedup;
  double cpu_power, hw_power;
  double sw_energy, hw_energy;
};

Row run_case(const std::string& label, const std::string& dataset,
             const core::NetworkDescriptor& descriptor, nn::Network& net,
             const std::vector<nn::Sample>& test_set) {
  Row row;
  row.test = label;
  row.dataset = dataset;

  // Prediction error: software reference and simulated hardware.
  const hls::DirectiveSet directives =
      descriptor.optimize ? hls::DirectiveSet::optimized() : hls::DirectiveSet::naive();
  axi::BlockDesign bd(net, directives, hls::zedboard());
  std::size_t sw_wrong = 0, hw_wrong = 0;
  for (const nn::Sample& sample : test_set) {
    if (net.predict(sample.image) != sample.label) ++sw_wrong;
    const axi::ClassifyResult hw = bd.classify(sample.image);
    if (!hw.ok || hw.predicted != sample.label) ++hw_wrong;
  }
  row.sw_error = static_cast<float>(sw_wrong) / static_cast<float>(test_set.size());
  row.hw_error = static_cast<float>(hw_wrong) / static_cast<float>(test_set.size());

  // Timing at the paper's test-set sizes.
  const std::size_t paper_count = dataset == "CIFAR-10" ? 10000 : 1000;
  row.sw_time = cpu::batch_seconds(net, paper_count);
  const hls::HlsReport& report = bd.ip_core().report();
  row.hw_time =
      static_cast<double>(paper_count) * (report.latency_seconds() + axi::kBlockingDriverSeconds);
  row.speedup = row.sw_time / row.hw_time;

  // Power and energy.
  row.cpu_power = power::software_power_w();
  row.hw_power = power::hardware_power_w(report.usage);
  power::EnergyLogger sw_logger, hw_logger;
  sw_logger.add_segment(row.cpu_power, row.sw_time);
  hw_logger.add_segment(row.hw_power, row.hw_time);
  row.sw_energy = sw_logger.joules();
  row.hw_energy = hw_logger.joules();
  return row;
}

void print_rows(const std::vector<Row>& rows) {
  util::Table table({"Test", "Dataset", "Err SW", "Err HW", "Time SW", "Time HW", "Speedup",
                     "P CPU", "P CPU+FPGA", "E SW", "E HW"});
  for (const Row& row : rows) {
    table.add_row({row.test, row.dataset, pct(row.sw_error), pct(row.hw_error),
                   util::format("%.2fs", row.sw_time), util::format("%.2fs", row.hw_time),
                   util::format("%.2fX", row.speedup), util::format("%.2fW", row.cpu_power),
                   util::format("%.2fW", row.hw_power), util::format("%.2fJ", row.sw_energy),
                   util::format("%.2fJ", row.hw_energy)});
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main() {
  std::puts("== Table I reproduction: hardware implementation vs. software one ==");
  std::puts("(test sets: 1000 synthetic USPS / 10000 synthetic CIFAR images)\n");

  std::vector<Row> rows;

  // Tests 1 & 2 share one trained network (same net, naive vs optimized HLS).
  const core::NetworkDescriptor d1 = usps_test1_descriptor(false);
  nn::Network net12 = train_usps_network(d1, /*seed=*/1);
  const auto usps = usps_test_set(1000);
  rows.push_back(run_case("Test 1", "USPS", d1, net12, usps));
  rows.push_back(run_case("Test 2", "USPS", usps_test1_descriptor(true), net12, usps));

  // Test 3: the larger USPS network (deeper: smaller stable learning rate).
  const core::NetworkDescriptor d3 = usps_test3_descriptor();
  nn::Network net3 = train_usps_network(d3, /*seed=*/2, /*epochs=*/8, /*learning_rate=*/0.002f);
  rows.push_back(run_case("Test 3", "USPS", d3, net3, usps));

  // Test 4: CIFAR-10 network with random weights (paper Sec. V-D).
  const core::NetworkDescriptor d4 = cifar_test4_descriptor();
  nn::Network net4 = d4.build_network();
  util::Rng rng(4);
  net4.init_weights(rng);
  rows.push_back(run_case("Test 4", "CIFAR-10", d4, net4, cifar_test_set(10000)));

  print_rows(rows);

  std::puts("\npaper Table I reference:");
  std::puts("  Test 1  USPS      3.9%/3.9%   3.3s/2.8s    1.18X  2.2W/4.19W   7.26J/11.73J");
  std::puts("  Test 2  USPS      3.9%/3.9%   3.3s/0.53s   6.23X  2.2W/4.21W   7.26J/2.23J");
  std::puts("  Test 3  USPS      7.1%/7.1%   4.3s/0.48s   9.0X   2.2W/4.24W   9.46J/2.04J");
  std::puts("  Test 4  CIFAR-10  89.4%/89.4% 2565s/223s   11.5X  2.2W/4.37W   5643J/975J");

  // Shape checks mirrored from the paper (exit non-zero if violated so the
  // bench doubles as a regression gate).
  bool ok = true;
  for (const Row& row : rows) ok &= (row.sw_error == row.hw_error);
  ok &= rows[0].speedup < rows[1].speedup;            // directives help
  ok &= rows[1].speedup < rows[3].speedup + 1e-9;     // speedup grows with size
  ok &= rows[0].hw_energy > rows[0].sw_energy;        // naive hw wastes energy
  ok &= rows[1].hw_energy < rows[1].sw_energy;        // optimized hw saves it
  ok &= rows[2].hw_energy < rows[2].sw_energy;
  ok &= rows[3].hw_energy < rows[3].sw_energy;
  std::printf("\nshape checks (identical errors, speedup ordering, energy crossover): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
