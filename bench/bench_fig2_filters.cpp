// Reproduces the paper's Fig. 2: convolutional filters before and after
// training. The figure shows that early-layer kernels converge to oriented
// edge/stroke detectors; here the first-layer kernels of the Test 1 network
// are rendered (ASCII) at initialization and after training on the synthetic
// USPS digits, with quantitative structure metrics.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::bench;

namespace {

/// Render one KxK kernel as signed ASCII art ('#' strong positive, '.' weak,
/// '-' negative).
std::string render_kernel(const nn::Tensor& weights, std::size_t k, std::size_t kernel) {
  float max_abs = 1e-9f;
  for (std::size_t i = 0; i < kernel * kernel; ++i) {
    max_abs = std::max(max_abs, std::fabs(weights[k * kernel * kernel + i]));
  }
  std::string art;
  for (std::size_t r = 0; r < kernel; ++r) {
    art += "    ";
    for (std::size_t c = 0; c < kernel; ++c) {
      const float v = weights[k * kernel * kernel + r * kernel + c] / max_abs;
      art += v > 0.6f ? '#' : v > 0.2f ? '+' : v > -0.2f ? '.' : v > -0.6f ? '-' : '=';
    }
    art += '\n';
  }
  return art;
}

/// Structure metric: fraction of total kernel "energy" in the largest
/// single coefficient — trained edge detectors spread energy along a stroke,
/// random kernels do not change systematically; we also report the spatial
/// smoothness (mean absolute difference between horizontal neighbours).
double smoothness(const nn::Tensor& weights, std::size_t k, std::size_t kernel) {
  double total = 0.0;
  int count = 0;
  for (std::size_t r = 0; r < kernel; ++r) {
    for (std::size_t c = 0; c + 1 < kernel; ++c) {
      total += std::fabs(weights[k * kernel * kernel + r * kernel + c] -
                         weights[k * kernel * kernel + r * kernel + c + 1]);
      ++count;
    }
  }
  return total / count;
}

void dump(const char* title, const nn::Conv2D& conv) {
  std::printf("-- %s --\n", title);
  for (std::size_t k = 0; k < conv.out_channels(); ++k) {
    std::printf("  kernel %zu (|w|max %.3f, smoothness %.4f):\n%s", k,
                [&] {
                  float m = 0.0f;
                  for (std::size_t i = 0; i < 25; ++i) {
                    m = std::max(m, std::fabs(conv.weights()[k * 25 + i]));
                  }
                  return m;
                }(),
                smoothness(conv.weights(), k, 5),
                render_kernel(conv.weights(), k, 5).c_str());
  }
}

}  // namespace

int main() {
  std::puts("== Fig. 2 reproduction: simple filters emerge with training ==\n");

  const core::NetworkDescriptor d = usps_test1_descriptor(false);
  nn::Network net = d.build_network();
  util::Rng rng(21);
  net.init_weights(rng);
  auto* conv = dynamic_cast<nn::Conv2D*>(&net.layer(0));

  // Snapshot the random init.
  const nn::Tensor before = conv->weights();
  dump("before training (random initialization)", *conv);

  data::UspsConfig config;
  config.samples_per_class = 20;
  config.seed = 123;
  const auto train_set = data::generate_usps(config).samples;
  nn::TrainConfig tc;
  tc.epochs = 8;
  tc.learning_rate = 0.005f;
  const auto result = nn::SgdTrainer(tc).train(net, train_set, {});
  std::printf("trained %zu epochs, final train error %.1f%%\n\n", tc.epochs,
              result.final_train_error * 100.0);

  dump("after training (stroke/edge-selective filters)", *conv);

  // Quantitative check: training moved the kernels substantially and grew
  // their magnitude (feature selectivity), as Fig. 2 illustrates visually.
  double moved = 0.0, norm_before = 0.0, norm_after = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    moved += std::fabs(conv->weights()[i] - before[i]);
    norm_before += before[i] * before[i];
    norm_after += conv->weights()[i] * conv->weights()[i];
  }
  std::printf("total weight movement (L1): %.3f, kernel energy %.3f -> %.3f\n", moved,
              norm_before, norm_after);
  const bool ok = moved > 0.5 && result.final_train_error < 0.2f;
  std::printf("shape check (kernels specialized, network learned): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
