// The web-application face of the framework (paper Sec. IV-A: "developed as a
// web-application to be easily accessible").
//
// Serves the JSON API:
//   GET  /healthz
//   GET  /api/v1/boards
//   POST /api/v1/generate  (body: network descriptor JSON)
// plus the serving runtime (deploy designs, predict against them):
//   POST /api/v1/deploy    POST /api/v1/predict
//   GET  /api/v1/designs   GET  /api/v1/metrics
// Unversioned /api/... aliases are retired and answer 410 gone.
//
// Run:  ./codegen_server [--port P]        serve until interrupted
//       ./codegen_server --demo            self-demo: start, POST a
//                                          descriptor to itself, print the
//                                          response summary, exit
//
// Sharded mode (see DESIGN.md "Sharded serving"): one router process
// consistent-hashes designs across N forked worker processes and fans
// /api/v1/deploy|predict out to them over persistent local connections;
// /api/v1/metrics and /api/v1/readyz aggregate the whole fleet.
//   --router               run as the fleet front door
//   --workers N            worker processes to fork (router mode; default 2).
//                          Without --router, N is the executor thread count
//                          of the single-process runtime (default 4).
//   --replication R        distinct workers holding each design (default 2)
//   --worker-threads N     executor threads per forked worker (default 2)
//
// Crash safety (see DESIGN.md "Crash recovery and durability"):
//   --journal PATH         durable deploy journal: every accepted deploy is
//                          fsynced to PATH before the 200, and a restarted
//                          router replays it to recover its full design set
//   --supervise            hold each worker's port reserved and restart
//                          crashed workers (exponential backoff); a restarted
//                          worker is re-filled through catalog repair
//   --restart-budget N     crashes tolerated per worker per minute before the
//                          slot is marked permanently down (default 5)
//
// Overload / robustness knobs (see DESIGN.md "Overload and failure behavior"):
//   --max-queue-depth N    shed predicts with 429 beyond N queued (0 = off)
//   --max-wait-us N        partial-batch flush deadline
//   --deadline-ms N        default predict deadline when the client sends no
//                          X-Deadline-Ms header (0 = none)
//   --breaker-failures N   consecutive failed batches that open a design's
//                          circuit breaker
//   --breaker-cooldown-ms N  open duration before a half-open probe
//   --faults SPEC          arm deterministic fault injection, e.g.
//                          "executor.batch=error:1.0:3" (also honors the
//                          CNN2FPGA_FAULTS / CNN2FPGA_FAULT_SEED env vars).
//                          In router mode the spec arms the ROUTER's
//                          injector (site shard.worker simulates a worker
//                          transport failure); workers still read the env.
//
// Heterogeneous backends (see DESIGN.md "Heterogeneous backends and the
// placer"):
//   --backends LIST        comma-separated engines to enable: "cpu,accel"
//                          (default), "cpu", or "accel"
//   --placer POLICY        batch placement: "cost" (default; completion-cost
//                          model, spills overflow to the idle engine), "cpu",
//                          or "accel"
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <memory>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <vector>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

namespace {
std::binary_semaphore g_shutdown{0};
void handle_signal(int) { g_shutdown.release(); }

bool parse_backends(const std::string& backends, serve::BackendsConfig* config) {
  if (backends.empty()) return true;
  config->cpu = false;
  config->accelerator = false;
  for (std::size_t start = 0; start < backends.size();) {
    std::size_t comma = backends.find(',', start);
    if (comma == std::string::npos) comma = backends.size();
    const std::string name = backends.substr(start, comma - start);
    if (name == "cpu") {
      config->cpu = true;
    } else if (name == "accel" || name == "accelerator") {
      config->accelerator = true;
    } else {
      std::fprintf(stderr, "--backends rejected: unknown engine '%s' (want cpu, accel)\n",
                   name.c_str());
      return false;
    }
    start = comma + 1;
  }
  return true;
}

/// Shared flag parsing for the single-process runtime and each forked
/// worker; only the executor thread count differs between the modes.
bool build_serving_config(const util::CliArgs& args, std::size_t default_threads,
                          serve::ServingConfig* config) {
  config->worker_threads = default_threads;
  config->batcher.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  config->batcher.max_wait_us =
      static_cast<std::uint64_t>(args.get_int("max-wait-us", 1000));
  config->batcher.max_queue_depth =
      static_cast<std::size_t>(args.get_int("max-queue-depth", 0));
  config->default_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));
  config->breaker.failure_threshold =
      static_cast<std::size_t>(args.get_int("breaker-failures", 5));
  config->breaker.cooldown_ms =
      static_cast<std::uint64_t>(args.get_int("breaker-cooldown-ms", 1000));
  if (!parse_backends(args.get_string("backends", "cpu,accel"), &config->backends)) {
    return false;
  }
  try {
    config->backends.placer = serve::parse_placer_policy(args.get_string("placer", "cost"));
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "--placer rejected: %s\n", error.what());
    return false;
  }
  return true;
}

/// Forked worker body: one full serving runtime on a fixed port, alive until
/// the router's control pipe reads EOF. Supervised workers bind with
/// SO_REUSEPORT: the router keeps a reservation socket on the same port so a
/// restarted worker can never lose the port to another process.
int run_worker_child(const util::CliArgs& args, int port, int shutdown_fd,
                     bool reuse_port = false) {
  serve::ServingConfig config;
  if (!build_serving_config(
          args, static_cast<std::size_t>(args.get_int("worker-threads", 2)), &config)) {
    return 1;
  }
  serve::ServingRuntime runtime(config);
  web::ServerConfig server_config;
  server_config.reuse_port = reuse_port;
  web::HttpServer server(server_config);
  serve::install_serve_api(server, runtime);
  try {
    server.start(port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker on port %d failed to start: %s\n", port, e.what());
    return 1;
  }
  char byte = 0;
  while (true) {
    const ssize_t n = ::read(shutdown_fd, &byte, 1);
    if (n == 0) break;                        // EOF: parent asked us to stop (or died)
    if (n < 0 && errno != EINTR) break;
  }
  server.stop();
  return 0;
}

int run_router(const util::CliArgs& args) {
  const int worker_count = static_cast<int>(args.get_int("workers", 2));
  if (worker_count < 1) {
    std::fprintf(stderr, "--router needs --workers >= 1\n");
    return 1;
  }

  const bool supervise = args.has("supervise");
  const std::string journal_path = args.get_string("journal", "");

  // Fork every worker BEFORE any thread exists in this process (a forked
  // copy of a multithreaded process is unusable — see shard/process.hpp).
  // Supervised restarts later fork from a threaded router, which is safe only
  // because run_worker_child silences logging before any worker thread could
  // contend a lock the child inherited (see shard/supervisor.hpp).
  std::vector<serve::shard::WorkerProcess> workers;
  serve::shard::SupervisorConfig supervisor_config;
  supervisor_config.restart_budget =
      static_cast<std::uint64_t>(args.get_int("restart-budget", 5));
  serve::shard::Supervisor supervisor(supervisor_config);
  std::vector<int> ports;
  if (supervise) {
    for (int i = 0; i < worker_count; ++i) {
      auto reserved = serve::shard::ReservedPort::reserve();
      if (!reserved.valid()) {
        std::fprintf(stderr, "could not reserve a local port for worker %d\n", i);
        return 1;
      }
      ports.push_back(reserved.port());
      auto launcher = std::make_unique<serve::shard::ProcessLauncher>(
          std::move(reserved),
          [&args](int worker_port, int shutdown_fd) {
            // First statement post-fork: the child may have been forked from a
            // threaded router during a restart, so it must not touch stdio
            // locks (LOG gates on an atomic level check).
            util::set_log_level(util::LogLevel::kOff);
            return run_worker_child(args, worker_port, shutdown_fd, /*reuse_port=*/true);
          },
          15000);
      if (!launcher->start()) {
        std::fprintf(stderr, "worker %d on port %d did not become ready\n", i,
                     launcher->port());
        return 1;
      }
      supervisor.add_slot(util::format("worker-%d", i), std::move(launcher));
    }
  } else {
    workers.resize(static_cast<std::size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      const int port = serve::shard::reserve_local_port();
      if (port == 0) {
        std::fprintf(stderr, "could not reserve a local port for worker %d\n", i);
        return 1;
      }
      ports.push_back(port);
    }
    for (int i = 0; i < worker_count; ++i) {
      const bool spawned = workers[static_cast<std::size_t>(i)].spawn(
          ports[static_cast<std::size_t>(i)], [&args](int port, int shutdown_fd) {
            return run_worker_child(args, port, shutdown_fd);
          });
      if (!spawned) {
        std::fprintf(stderr, "fork of worker %d failed\n", i);
        return 1;
      }
    }
    for (int i = 0; i < worker_count; ++i) {
      if (!serve::shard::wait_until_ready(ports[static_cast<std::size_t>(i)], 15000)) {
        std::fprintf(stderr, "worker %d on port %d did not become ready\n", i,
                     ports[static_cast<std::size_t>(i)]);
        return 1;
      }
    }
  }

  serve::shard::RouterConfig config;
  config.replication = static_cast<std::size_t>(args.get_int("replication", 2));
  config.journal_path = journal_path;
  // Deploys regenerate the design on a cache miss; give them more room than
  // the predict path's defaults.
  config.worker.client.read_timeout_ms = 30000;
  std::unique_ptr<serve::shard::Router> router_ptr;
  try {
    router_ptr = std::make_unique<serve::shard::Router>(config);  // replays --journal
  } catch (const serve::shard::JournalError& e) {
    std::fprintf(stderr, "--journal rejected: %s\n", e.what());
    return 1;
  }
  serve::shard::Router& router = *router_ptr;
  if (const std::string faults = args.get_string("faults", ""); !faults.empty()) {
    std::string error;
    if (!router.faults().configure(faults, &error)) {
      std::fprintf(stderr, "--faults rejected: %s\n", error.c_str());
      return 1;
    }
    std::printf("router fault injection armed: %s\n", faults.c_str());
  }
  for (int i = 0; i < worker_count; ++i) {
    router.add_worker(util::format("worker-%d", i), "127.0.0.1",
                      ports[static_cast<std::size_t>(i)]);
  }
  if (!journal_path.empty()) {
    const std::size_t recovered = router.recover();
    if (recovered > 0) {
      std::printf("recovered %zu design(s) from journal %s\n", recovered,
                  journal_path.c_str());
    }
  }

  web::HttpServer server;
  web::install_api(server);  // generate/train/boards stay on the front door
  serve::shard::install_router_api(server, router);
  const int port = server.start(static_cast<int>(args.get_int("port", 0)));
  if (supervise) router.attach_supervisor(&supervisor);
  router.start_probing();

  std::printf("cnn2fpga shard router listening on http://127.0.0.1:%d\n", port);
  std::printf("fleet: %d workers (replication %zu):", worker_count, config.replication);
  for (int i = 0; i < worker_count; ++i) {
    std::printf(" worker-%d=127.0.0.1:%d", i, ports[static_cast<std::size_t>(i)]);
  }
  std::printf("\n");
  if (supervise) {
    std::printf("supervisor: restart budget %llu crashes / %d ms per worker\n",
                static_cast<unsigned long long>(supervisor_config.restart_budget),
                supervisor_config.budget_window_ms);
  }
  if (!journal_path.empty()) {
    std::printf("deploy journal: %s (fsync per record)\n", journal_path.c_str());
  }
  std::puts("routes: POST /api/v1/deploy, POST /api/v1/predict (consistent-hash fan-out),");
  std::puts("        GET /api/v1/designs, GET /api/v1/metrics, GET /api/v1/readyz (fleet),");
  std::puts("        GET /healthz, GET /api/v1/boards, POST /api/v1/generate (local)");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::puts("press Ctrl-C to stop");
  g_shutdown.acquire();
  router.stop_probing();
  server.stop();
  if (supervise) {
    supervisor.stop_all();
  } else {
    for (auto& worker : workers) worker.stop();
  }
  std::puts("\nrouter stopped");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);

  if (args.has("router")) return run_router(args);

  web::HttpServer server;
  web::install_api(server);
  serve::ServingConfig serving_config;
  if (!build_serving_config(
          args, static_cast<std::size_t>(args.get_int("workers", 4)), &serving_config)) {
    return 1;
  }
  serve::ServingRuntime runtime(serving_config);
  std::printf("backends: cpu=%s accelerator=%s placer=%s\n",
              serving_config.backends.cpu ? "on" : "off",
              serving_config.backends.accelerator ? "on" : "off",
              serve::placer_policy_name(serving_config.backends.placer));
  if (const std::string faults = args.get_string("faults", ""); !faults.empty()) {
    std::string error;
    if (!runtime.faults().configure(faults, &error)) {
      std::fprintf(stderr, "--faults rejected: %s\n", error.c_str());
      return 1;
    }
    std::printf("fault injection armed: %s\n", faults.c_str());
  }
  serve::install_serve_api(server, runtime);
  const int port = server.start(static_cast<int>(args.get_int("port", 0)));
  std::printf("cnn2fpga server listening on http://127.0.0.1:%d\n", port);
  std::puts("routes: GET /healthz, GET /api/v1/boards, POST /api/v1/generate,");
  std::puts("        POST /api/v1/deploy, POST /api/v1/predict, GET /api/v1/designs,");
  std::puts("        GET /api/v1/metrics, GET /api/v1/readyz");
  std::puts("        (unversioned /api/... aliases answer 410 gone)");

  if (args.has("demo")) {
    const char* descriptor = R"({
      "name": "demo_net", "board": "zybo", "optimize": true, "seed": 3,
      "input": {"channels": 1, "height": 12, "width": 12},
      "layers": [
        {"type": "conv", "feature_maps_out": 4, "kernel": 3,
         "pool": {"type": "max", "kernel": 2, "step": 2}},
        {"type": "linear", "neurons": 5}
      ]})";
    std::puts("\n--demo: posting a descriptor to ourselves...");
    const auto response =
        web::http_request("127.0.0.1", port, "POST", "/api/v1/generate", descriptor);
    if (!response || response->status != 200) {
      std::printf("demo request failed (status %d)\n", response ? response->status : -1);
      server.stop();
      return 1;
    }
    const auto body = json::parse(response->body);
    std::printf("generated '%s': %zu bytes of C++, %zu tcl scripts\n",
                body.at("name").as_string().c_str(),
                body.at("cpp_source").as_string().size(),
                body.at("tcl_files").as_object().size());
    const auto& report = body.at("hls_report");
    std::printf("HLS: %ld cycles/image on %s, fits=%s, DSP %.1f%%, BRAM %.1f%%\n",
                report.at("latency_cycles").as_int(), report.at("board").as_string().c_str(),
                report.at("fits").as_bool() ? "yes" : "no",
                report.at("utilization").at("dsp").as_double() * 100.0,
                report.at("utilization").at("bram").as_double() * 100.0);
    server.stop();
    std::puts("demo complete");
    return 0;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::puts("press Ctrl-C to stop");
  g_shutdown.acquire();
  server.stop();
  std::puts("\nserver stopped");
  return 0;
}
