// The web-application face of the framework (paper Sec. IV-A: "developed as a
// web-application to be easily accessible").
//
// Serves the JSON API:
//   GET  /healthz
//   GET  /api/v1/boards
//   POST /api/v1/generate  (body: network descriptor JSON)
// plus the serving runtime (deploy designs, predict against them):
//   POST /api/v1/deploy    POST /api/v1/predict
//   GET  /api/v1/designs   GET  /api/v1/metrics
// Unversioned /api/... aliases are retired and answer 410 gone.
//
// Run:  ./codegen_server [--port P]        serve until interrupted
//       ./codegen_server --demo            self-demo: start, POST a
//                                          descriptor to itself, print the
//                                          response summary, exit
//
// Overload / robustness knobs (see DESIGN.md "Overload and failure behavior"):
//   --max-queue-depth N    shed predicts with 429 beyond N queued (0 = off)
//   --max-wait-us N        partial-batch flush deadline
//   --deadline-ms N        default predict deadline when the client sends no
//                          X-Deadline-Ms header (0 = none)
//   --breaker-failures N   consecutive failed batches that open a design's
//                          circuit breaker
//   --breaker-cooldown-ms N  open duration before a half-open probe
//   --faults SPEC          arm deterministic fault injection, e.g.
//                          "executor.batch=error:1.0:3" (also honors the
//                          CNN2FPGA_FAULTS / CNN2FPGA_FAULT_SEED env vars)
//
// Heterogeneous backends (see DESIGN.md "Heterogeneous backends and the
// placer"):
//   --backends LIST        comma-separated engines to enable: "cpu,accel"
//                          (default), "cpu", or "accel"
//   --placer POLICY        batch placement: "cost" (default; completion-cost
//                          model, spills overflow to the idle engine), "cpu",
//                          or "accel"
#include <csignal>
#include <cstdio>
#include <semaphore>
#include <stdexcept>
#include <string>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

namespace {
std::binary_semaphore g_shutdown{0};
void handle_signal(int) { g_shutdown.release(); }
}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);

  web::HttpServer server;
  web::install_api(server);
  serve::ServingConfig serving_config;
  serving_config.worker_threads = static_cast<std::size_t>(args.get_int("workers", 4));
  serving_config.batcher.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  serving_config.batcher.max_wait_us =
      static_cast<std::uint64_t>(args.get_int("max-wait-us", 1000));
  serving_config.batcher.max_queue_depth =
      static_cast<std::size_t>(args.get_int("max-queue-depth", 0));
  serving_config.default_deadline_ms =
      static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));
  serving_config.breaker.failure_threshold =
      static_cast<std::size_t>(args.get_int("breaker-failures", 5));
  serving_config.breaker.cooldown_ms =
      static_cast<std::uint64_t>(args.get_int("breaker-cooldown-ms", 1000));
  if (const std::string backends = args.get_string("backends", "cpu,accel");
      !backends.empty()) {
    serving_config.backends.cpu = false;
    serving_config.backends.accelerator = false;
    for (std::size_t start = 0; start < backends.size();) {
      std::size_t comma = backends.find(',', start);
      if (comma == std::string::npos) comma = backends.size();
      const std::string name = backends.substr(start, comma - start);
      if (name == "cpu") {
        serving_config.backends.cpu = true;
      } else if (name == "accel" || name == "accelerator") {
        serving_config.backends.accelerator = true;
      } else {
        std::fprintf(stderr, "--backends rejected: unknown engine '%s' (want cpu, accel)\n",
                     name.c_str());
        return 1;
      }
      start = comma + 1;
    }
  }
  try {
    serving_config.backends.placer =
        serve::parse_placer_policy(args.get_string("placer", "cost"));
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "--placer rejected: %s\n", error.what());
    return 1;
  }
  serve::ServingRuntime runtime(serving_config);
  std::printf("backends: cpu=%s accelerator=%s placer=%s\n",
              serving_config.backends.cpu ? "on" : "off",
              serving_config.backends.accelerator ? "on" : "off",
              serve::placer_policy_name(serving_config.backends.placer));
  if (const std::string faults = args.get_string("faults", ""); !faults.empty()) {
    std::string error;
    if (!runtime.faults().configure(faults, &error)) {
      std::fprintf(stderr, "--faults rejected: %s\n", error.c_str());
      return 1;
    }
    std::printf("fault injection armed: %s\n", faults.c_str());
  }
  serve::install_serve_api(server, runtime);
  const int port = server.start(static_cast<int>(args.get_int("port", 0)));
  std::printf("cnn2fpga server listening on http://127.0.0.1:%d\n", port);
  std::puts("routes: GET /healthz, GET /api/v1/boards, POST /api/v1/generate,");
  std::puts("        POST /api/v1/deploy, POST /api/v1/predict, GET /api/v1/designs,");
  std::puts("        GET /api/v1/metrics, GET /api/v1/readyz");
  std::puts("        (unversioned /api/... aliases answer 410 gone)");

  if (args.has("demo")) {
    const char* descriptor = R"({
      "name": "demo_net", "board": "zybo", "optimize": true, "seed": 3,
      "input": {"channels": 1, "height": 12, "width": 12},
      "layers": [
        {"type": "conv", "feature_maps_out": 4, "kernel": 3,
         "pool": {"type": "max", "kernel": 2, "step": 2}},
        {"type": "linear", "neurons": 5}
      ]})";
    std::puts("\n--demo: posting a descriptor to ourselves...");
    const auto response =
        web::http_request("127.0.0.1", port, "POST", "/api/v1/generate", descriptor);
    if (!response || response->status != 200) {
      std::printf("demo request failed (status %d)\n", response ? response->status : -1);
      server.stop();
      return 1;
    }
    const auto body = json::parse(response->body);
    std::printf("generated '%s': %zu bytes of C++, %zu tcl scripts\n",
                body.at("name").as_string().c_str(),
                body.at("cpp_source").as_string().size(),
                body.at("tcl_files").as_object().size());
    const auto& report = body.at("hls_report");
    std::printf("HLS: %ld cycles/image on %s, fits=%s, DSP %.1f%%, BRAM %.1f%%\n",
                report.at("latency_cycles").as_int(), report.at("board").as_string().c_str(),
                report.at("fits").as_bool() ? "yes" : "no",
                report.at("utilization").at("dsp").as_double() * 100.0,
                report.at("utilization").at("bram").as_double() * 100.0);
    server.stop();
    std::puts("demo complete");
    return 0;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::puts("press Ctrl-C to stop");
  g_shutdown.acquire();
  server.stop();
  std::puts("\nserver stopped");
  return 0;
}
