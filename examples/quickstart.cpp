// Quickstart: the minimal cnn2fpga flow.
//
//   1. Describe a CNN (the JSON a user would build in the web GUI).
//   2. Hand the framework the descriptor plus weights.
//   3. Receive the synthesizable C++ file, the three Vivado tcl scripts and
//      the HLS latency/utilization report.
//
// Run:  ./quickstart [--out DIR]
#include <cstdio>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);

  // A descriptor straight from JSON -- exactly what the GUI posts (Fig. 3).
  const char* descriptor_json = R"({
    "name": "quickstart_net",
    "board": "zedboard",
    "optimize": true,
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 6, "kernel": 5,
       "pool": {"type": "max", "kernel": 2, "step": 2}},
      {"type": "linear", "neurons": 10}
    ]
  })";

  const core::NetworkDescriptor descriptor =
      core::NetworkDescriptor::from_json_text(descriptor_json);
  std::printf("descriptor '%s' -> %zu classes on board '%s'\n", descriptor.name.c_str(),
              descriptor.num_classes(), descriptor.board.c_str());

  // The paper's shortcut for performance studies: random weights -- the
  // hardware is identical to a trained network of the same structure.
  const core::GeneratedDesign design =
      core::Framework::generate_with_random_weights(descriptor, /*seed=*/42);

  std::printf("\ngenerated artifacts:\n  %s (%zu bytes of synthesizable C++)\n",
              design.cpp_file_name.c_str(), design.cpp_source.size());
  for (const auto& [name, contents] : design.tcl_files) {
    std::printf("  %s (%zu bytes)\n", name.c_str(), contents.size());
  }

  std::puts("\nHLS report:");
  std::fputs(design.hls_report.to_string().c_str(), stdout);
  for (const std::string& warning : design.warnings) {
    std::printf("WARNING: %s\n", warning.c_str());
  }

  if (const auto out = args.get("out")) {
    design.write_to(*out);
    std::printf("\nartifacts written to %s/\n", out->c_str());
  } else {
    std::puts("\n(pass --out DIR to write the files to disk)");
  }
  return 0;
}
