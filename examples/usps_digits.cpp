// USPS digit recognition: the paper's Tests 1-3 end to end.
//
//   1. generate a synthetic USPS corpus and train the Test-1 network offline
//      (the paper uses Torch; this library's SGD trainer stands in);
//   2. export the weight file and feed it to the framework with the
//      descriptor -- receiving the synthesizable C++ and tcl scripts;
//   3. execute the design inside the simulated Zynq block design (Fig. 5)
//      and compare against the software baseline: prediction error,
//      execution time, speedup, power and energy -- one Table I row.
//
// Run:  ./usps_digits [--epochs N] [--train-per-class N] [--test-images N]
//                     [--naive] [--out DIR]
#include <cstdio>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
  const std::size_t per_class = static_cast<std::size_t>(args.get_int("train-per-class", 20));
  const std::size_t test_images = static_cast<std::size_t>(args.get_int("test-images", 500));
  const bool naive = args.has("naive");

  // -- the descriptor of the paper's Test 1 network -------------------------
  core::NetworkDescriptor descriptor;
  descriptor.name = "usps_digits";
  descriptor.board = "zedboard";
  descriptor.optimize = !naive;
  descriptor.input_channels = 1;
  descriptor.input_height = 16;
  descriptor.input_width = 16;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  descriptor.layers = {conv, lin};

  // -- offline training ------------------------------------------------------
  data::UspsConfig train_config;
  train_config.samples_per_class = per_class;
  train_config.seed = 1;
  const auto train_set = data::generate_usps(train_config).samples;
  data::UspsConfig test_config;
  test_config.samples_per_class = (test_images + 9) / 10;
  test_config.seed = 999;
  auto test_set = data::generate_usps(test_config).samples;
  test_set.resize(test_images);

  nn::Network net = descriptor.build_network();
  util::Rng rng(7);
  net.init_weights(rng);

  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.learning_rate = 0.005f;
  tc.on_epoch = [](std::size_t epoch, float loss, float) {
    std::printf("  epoch %zu: mean NLL %.4f\n", epoch, loss);
  };
  std::printf("training on %zu synthetic USPS digits (%zu epochs)...\n", train_set.size(),
              epochs);
  const nn::TrainResult result = nn::SgdTrainer(tc).train(net, train_set, test_set);
  std::printf("offline training done: train error %.2f%%, test error %.2f%%\n\n",
              result.final_train_error * 100.0, result.final_test_error * 100.0);

  // -- weight export + generation (the framework's input contract) ----------
  const auto weight_file = nn::serialize_weights(net);
  const core::GeneratedDesign design =
      core::Framework::generate_from_weights(descriptor, weight_file);
  std::printf("generated %s (%zu bytes) + %zu tcl scripts, directives: %s\n",
              design.cpp_file_name.c_str(), design.cpp_source.size(),
              design.tcl_files.size(), design.hls_report.directives.to_string().c_str());

  // -- hardware vs software comparison (one Table I row) --------------------
  const hls::DirectiveSet directives =
      naive ? hls::DirectiveSet::naive() : hls::DirectiveSet::optimized();
  axi::BlockDesign bd(net, directives, hls::zedboard());
  std::size_t sw_wrong = 0, hw_wrong = 0;
  for (const nn::Sample& sample : test_set) {
    if (net.predict(sample.image) != sample.label) ++sw_wrong;
    const axi::ClassifyResult hw = bd.classify(sample.image);
    if (!hw.ok || hw.predicted != sample.label) ++hw_wrong;
  }

  const double sw_time = cpu::batch_seconds(net, test_set.size());
  const double hw_time =
      static_cast<double>(test_set.size()) *
      (bd.ip_core().report().latency_seconds() + axi::kBlockingDriverSeconds);
  const double sw_power = power::software_power_w();
  const double hw_power = power::hardware_power_w(bd.ip_core().report().usage);

  power::EnergyLogger sw_energy, hw_energy;
  sw_energy.add_segment(sw_power, sw_time);
  hw_energy.add_segment(hw_power, hw_time);

  util::Table table({"", "error", "time", "power", "energy"});
  table.add_row({"software (ARM A9)", util::format("%.2f%%", 100.0 * sw_wrong / test_set.size()),
                 util::human_seconds(sw_time), util::format("%.2fW", sw_power),
                 util::format("%.2fJ", sw_energy.joules())});
  table.add_row({"hardware (FPGA)", util::format("%.2f%%", 100.0 * hw_wrong / test_set.size()),
                 util::human_seconds(hw_time), util::format("%.2fW", hw_power),
                 util::format("%.2fJ", hw_energy.joules())});
  std::puts("");
  std::fputs(table.render().c_str(), stdout);
  std::printf("speedup: %.2fX over %zu test images\n", sw_time / hw_time, test_set.size());

  if (const auto out = args.get("out")) {
    design.write_to(*out);
    nn::save_weights(net, *out + "/usps_digits.weights");
    std::printf("artifacts + weight file written to %s/\n", out->c_str());
  }
  return sw_wrong == hw_wrong ? 0 : 1;
}
