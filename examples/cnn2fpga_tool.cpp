// cnn2fpga_tool: command-line front-end to the framework (for users who
// script the flow instead of using the web GUI).
//
// Subcommands:
//   boards
//       List supported platforms and their resource budgets.
//   estimate --descriptor FILE [--seed N]
//       Print the HLS latency/utilization report for a descriptor.
//   train --descriptor FILE --out WEIGHTS [--dataset usps|cifar10]
//         [--epochs N] [--samples-per-class N] [--lr F] [--seed N]
//       Train on the synthetic corpus, write a CNN2FPGAW1 weight file.
//   generate --descriptor FILE --out DIR [--weights WEIGHTS | --seed N]
//       Emit the synthesizable C++, the tcl scripts and the HLS report.
//   explore --descriptor FILE [--objective throughput|energy|latency]
//       Automated design-space exploration over boards x directives x
//       precision; prints the candidate table, the Pareto front and a
//       recommendation.
#include <cstdio>

#include "cnn2fpga.hpp"
#include "core/dse.hpp"

using namespace cnn2fpga;

namespace {

int usage() {
  std::puts("usage: cnn2fpga_tool <boards|estimate|train|generate> [options]");
  std::puts("  boards");
  std::puts("  estimate --descriptor FILE [--seed N]");
  std::puts("  train    --descriptor FILE --out WEIGHTS [--dataset usps|cifar10]");
  std::puts("           [--epochs N] [--samples-per-class N] [--lr F] [--seed N]");
  std::puts("  generate --descriptor FILE --out DIR [--weights WEIGHTS | --seed N]");
  std::puts("  explore  --descriptor FILE [--objective throughput|energy|latency]");
  return 2;
}

core::NetworkDescriptor load_descriptor(const util::CliArgs& args) {
  const auto path = args.get("descriptor");
  if (!path || path->empty()) throw std::runtime_error("--descriptor FILE is required");
  return core::NetworkDescriptor::from_json_text(util::read_file(*path));
}

int cmd_boards() {
  util::Table table({"board", "part", "FF", "LUT", "MemLUT", "BRAM36", "DSP", "clock"});
  for (const hls::FpgaDevice& device : hls::device_catalog()) {
    table.add_row({device.board, device.part, util::format("%llu", (unsigned long long)device.ff),
                   util::format("%llu", (unsigned long long)device.lut),
                   util::format("%llu", (unsigned long long)device.lutram),
                   util::format("%llu", (unsigned long long)device.bram36),
                   util::format("%llu", (unsigned long long)device.dsp),
                   util::format("%.0f MHz", device.clock_mhz)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_estimate(const util::CliArgs& args) {
  const core::NetworkDescriptor descriptor = load_descriptor(args);
  const core::GeneratedDesign design = core::Framework::generate_with_random_weights(
      descriptor, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  std::fputs(design.hls_report.to_string().c_str(), stdout);
  for (const std::string& warning : design.warnings) {
    std::printf("WARNING: %s\n", warning.c_str());
  }
  return design.hls_report.fits() ? 0 : 1;
}

int cmd_train(const util::CliArgs& args) {
  const core::NetworkDescriptor descriptor = load_descriptor(args);
  const auto out = args.get("out");
  if (!out || out->empty()) throw std::runtime_error("--out WEIGHTS is required");

  const std::string dataset = args.get_string("dataset", "usps");
  const std::size_t per_class = static_cast<std::size_t>(args.get_int("samples-per-class", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<nn::Sample> train_set, test_set;
  if (dataset == "usps") {
    data::UspsConfig config;
    config.samples_per_class = per_class;
    config.seed = seed;
    train_set = data::generate_usps(config).samples;
    config.seed = seed + 1000;
    test_set = data::generate_usps(config).samples;
  } else if (dataset == "cifar10") {
    data::CifarConfig config;
    config.samples_per_class = per_class;
    config.seed = seed;
    train_set = data::generate_cifar(config).samples;
    config.seed = seed + 1000;
    test_set = data::generate_cifar(config).samples;
  } else {
    throw std::runtime_error("--dataset must be usps or cifar10");
  }

  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);

  nn::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(args.get_int("epochs", 6));
  tc.learning_rate = static_cast<float>(args.get_double("lr", 0.005));
  tc.on_epoch = [](std::size_t epoch, float loss, float) {
    std::printf("epoch %zu: mean NLL %.4f\n", epoch, loss);
  };
  const nn::TrainResult result = nn::SgdTrainer(tc).train(net, train_set, test_set);
  std::printf("train error %.2f%%, test error %.2f%%\n", result.final_train_error * 100.0,
              result.final_test_error * 100.0);

  nn::save_weights(net, *out);
  std::printf("weights written to %s\n", out->c_str());
  return 0;
}

int cmd_generate(const util::CliArgs& args) {
  const core::NetworkDescriptor descriptor = load_descriptor(args);
  const auto out = args.get("out");
  if (!out || out->empty()) throw std::runtime_error("--out DIR is required");

  core::GeneratedDesign design;
  if (const auto weights = args.get("weights"); weights && !weights->empty()) {
    design = core::Framework::generate_from_weights(descriptor,
                                                    util::read_file_bytes(*weights));
  } else {
    design = core::Framework::generate_with_random_weights(
        descriptor, static_cast<std::uint64_t>(args.get_int("seed", 1)));
  }

  design.write_to(*out);
  std::printf("wrote %s, 3 tcl scripts, hls_report.txt and descriptor.json to %s/\n",
              design.cpp_file_name.c_str(), out->c_str());
  std::printf("latency: %llu cycles/image (%s), fits %s: %s\n",
              (unsigned long long)design.hls_report.latency_cycles,
              util::human_seconds(design.hls_report.latency_seconds()).c_str(),
              descriptor.board.c_str(), design.hls_report.fits() ? "yes" : "NO");
  for (const std::string& warning : design.warnings) {
    std::printf("WARNING: %s\n", warning.c_str());
  }
  return design.hls_report.fits() ? 0 : 1;
}

int cmd_explore(const util::CliArgs& args) {
  const core::NetworkDescriptor descriptor = load_descriptor(args);
  core::DseOptions options;
  options.objective = core::parse_objective(args.get_string("objective", "throughput"));
  const core::DseResult result = core::explore_design_space(descriptor, options);
  std::printf("objective: %s\n", core::objective_name(options.objective));
  std::fputs(result.to_string().c_str(), stdout);
  return result.best ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "boards") return cmd_boards();
    if (command == "estimate") return cmd_estimate(args);
    if (command == "train") return cmd_train(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "explore") return cmd_explore(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
