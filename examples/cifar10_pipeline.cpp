// CIFAR-10 pipeline: the paper's Test 4 methodology.
//
// The network (conv12 -> pool -> conv36 -> pool -> linear36+tanh -> linear10)
// is generated with *random weights* -- the paper's point is that hardware
// cost and performance are independent of the weight values, so a designer
// can evaluate an architecture before training it. The example:
//   - generates the design and prints the resource picture (the BRAM
//     saturation of Table II's Test 4 row),
//   - streams a batch of synthetic CIFAR images through the simulated block
//     design in both blocking and streaming driver modes,
//   - prints the projected Table-I-style performance row.
//
// Run:  ./cifar10_pipeline [--images N] [--seed S] [--board zybo|zedboard|virtex7]
#include <cstdio>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t image_count = static_cast<std::size_t>(args.get_int("images", 200));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
  const std::string board = args.get_string("board", "zedboard");

  core::NetworkDescriptor descriptor;
  descriptor.name = "cifar10_test4";
  descriptor.board = board;
  descriptor.optimize = true;
  descriptor.input_channels = 3;
  descriptor.input_height = 32;
  descriptor.input_width = 32;
  core::LayerSpec conv1;
  conv1.type = core::LayerSpec::Type::kConv;
  conv1.conv.feature_maps_out = 12;
  conv1.conv.kernel_h = conv1.conv.kernel_w = 5;
  conv1.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec conv2;
  conv2.type = core::LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 36;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  conv2.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin1;
  lin1.type = core::LayerSpec::Type::kLinear;
  lin1.linear.neurons = 36;
  lin1.linear.activation = nn::ActKind::kTanh;
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  descriptor.layers = {conv1, conv2, lin1, lin2};

  std::printf("generating '%s' for board '%s' with random weights (seed %llu)...\n",
              descriptor.name.c_str(), board.c_str(), (unsigned long long)seed);
  const core::GeneratedDesign design =
      core::Framework::generate_with_random_weights(descriptor, seed);
  std::fputs(design.hls_report.to_string().c_str(), stdout);
  for (const std::string& warning : design.warnings) {
    std::printf("WARNING: %s\n", warning.c_str());
  }
  if (!design.hls_report.fits()) {
    std::puts("design does not fit the selected board; stopping before simulation");
    return 2;
  }

  // Functional + timing run through the Fig. 5 fabric.
  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);

  data::CifarConfig data_config;
  data_config.samples_per_class = (image_count + 9) / 10;
  auto samples = data::generate_cifar(data_config).samples;
  samples.resize(image_count);
  std::vector<nn::Tensor> images;
  std::size_t sw_wrong = 0;
  for (const nn::Sample& sample : samples) {
    images.push_back(sample.image);
    if (net.predict(sample.image) != sample.label) ++sw_wrong;
  }

  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), *hls::find_device(board));
  const axi::BatchResult blocking = bd.classify_batch(images, /*streaming=*/false);
  axi::BlockDesign bd2(net, hls::DirectiveSet::optimized(), *hls::find_device(board));
  const axi::BatchResult streaming = bd2.classify_batch(images, /*streaming=*/true);

  std::size_t hw_wrong = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (blocking.predictions.at(i) != samples[i].label) ++hw_wrong;
  }

  const double sw_time = cpu::batch_seconds(net, image_count);
  std::printf("\nprediction error: software %.1f%%, hardware %.1f%% (random weights -> "
              "chance level, as in the paper's Test 4)\n",
              100.0 * sw_wrong / image_count, 100.0 * hw_wrong / image_count);
  std::printf("software (A9 model): %s for %zu images\n",
              util::human_seconds(sw_time).c_str(), image_count);
  std::printf("hardware blocking  : %s  (%.2fX speedup)\n",
              util::human_seconds(blocking.seconds).c_str(), sw_time / blocking.seconds);
  std::printf("hardware streaming : %s  (%.2fX speedup)\n",
              util::human_seconds(streaming.seconds).c_str(), sw_time / streaming.seconds);
  std::puts("\nfabric occupancy:");
  std::fputs(bd.occupancy_report().c_str(), stdout);
  return sw_wrong == hw_wrong ? 0 : 1;
}
