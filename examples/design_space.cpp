// Design-space exploration (paper Sec. V-E: "Vivado HLS ... allows to explore
// faster the design space and analyze different solutions ... and finally
// converge to the most suitable implementation").
//
// For a parametric family of USPS-style networks this example sweeps
//   boards x directive sets x feature-map counts
// and prints, for each point, latency, throughput, resources, power and an
// efficiency figure (classifications per joule); it then recommends the
// fastest configuration that fits each board.
//
// Run:  ./design_space [--kernel K] [--neurons N]
#include <cstdio>

#include "cnn2fpga.hpp"

using namespace cnn2fpga;

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::size_t kernel = static_cast<std::size_t>(args.get_int("kernel", 5));
  const std::size_t neurons = static_cast<std::size_t>(args.get_int("neurons", 10));

  const std::vector<std::pair<std::string, hls::DirectiveSet>> combos = {
      {"none", hls::DirectiveSet::naive()},
      {"PIPELINE", {true, false}},
      {"DATAFLOW+PIPELINE", hls::DirectiveSet::optimized()},
  };

  for (const hls::FpgaDevice& device : hls::device_catalog()) {
    std::printf("== board %s (%s) ==\n", device.board.c_str(), device.part.c_str());
    util::Table table({"feature maps", "directives", "latency", "imgs/s", "DSP%", "BRAM%",
                       "fits", "imgs/J"});

    struct Best {
      double images_per_second = 0.0;
      std::string label;
    } best;

    for (std::size_t maps : {4u, 8u, 16u, 32u}) {
      core::NetworkDescriptor d;
      d.name = "dse";
      d.board = device.board;
      d.input_channels = 1;
      d.input_height = 16;
      d.input_width = 16;
      core::LayerSpec conv;
      conv.type = core::LayerSpec::Type::kConv;
      conv.conv.feature_maps_out = maps;
      conv.conv.kernel_h = conv.conv.kernel_w = kernel;
      conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
      core::LayerSpec lin;
      lin.type = core::LayerSpec::Type::kLinear;
      lin.linear.neurons = neurons;
      d.layers = {conv, lin};

      nn::Network net = d.build_network();
      util::Rng rng(1);
      net.init_weights(rng);

      for (const auto& [label, directives] : combos) {
        const hls::HlsReport report = hls::estimate(net, directives, device);
        const double per_image = report.interval_seconds() + axi::kStreamingDriverSeconds;
        const double images_per_second = 1.0 / per_image;
        const double watts = power::hardware_power_w(report.usage);
        const double images_per_joule = images_per_second / watts;
        table.add_row({util::format("%zu", maps), label,
                       util::human_seconds(report.latency_seconds()),
                       util::format("%.0f", images_per_second),
                       util::format("%.1f%%", report.util.dsp * 100),
                       util::format("%.1f%%", report.util.bram * 100),
                       report.fits() ? "yes" : "NO",
                       util::format("%.0f", images_per_joule)});
        if (report.fits() && images_per_second > best.images_per_second) {
          best.images_per_second = images_per_second;
          best.label = util::format("%zu maps, %s", maps, label.c_str());
        }
      }
    }
    std::fputs(table.render().c_str(), stdout);
    if (best.images_per_second > 0) {
      std::printf("recommended: %s (%.0f imgs/s)\n\n", best.label.c_str(),
                  best.images_per_second);
    } else {
      std::puts("no configuration fits this board\n");
    }
  }
  return 0;
}
